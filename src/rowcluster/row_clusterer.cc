#include "rowcluster/row_clusterer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "index/label_index.h"
#include "prov/ledger.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace ltee::rowcluster {

RowClusterer::RowClusterer(RowClustererOptions options)
    : options_(std::move(options)) {}

std::vector<std::vector<int32_t>> RowClusterer::BuildBlocks(
    const ClassRowSet& rows) const {
  std::vector<std::vector<int32_t>> blocks(rows.rows.size());
  if (!options_.enable_blocking) {
    for (auto& b : blocks) b.push_back(0);
    return blocks;
  }
  // One block per distinct normalized label; each row joins its own block
  // plus the blocks of similar labels retrieved from a Lucene-style index.
  // Labels arrive pre-tokenized from the prepared corpus, so the index is
  // fed and queried with interned token ids.
  index::LabelIndex label_index(rows.dict);
  std::unordered_map<std::string, int32_t> block_of_label;
  for (const auto& row : rows.rows) {
    auto [it, inserted] = block_of_label.emplace(
        row.normalized_label, static_cast<int32_t>(block_of_label.size()));
    if (inserted) {
      label_index.AddTokens(static_cast<uint32_t>(it->second),
                            row.normalized_label, row.label_tokens);
    }
  }
  label_index.Build();
  for (size_t i = 0; i < rows.rows.size(); ++i) {
    const auto& row = rows.rows[i];
    blocks[i].push_back(block_of_label[row.normalized_label]);
    for (const auto& hit : label_index.Search(row.label_tokens,
                                              options_.blocking_candidates)) {
      const int32_t block = static_cast<int32_t>(hit.doc);
      if (std::find(blocks[i].begin(), blocks[i].end(), block) ==
          blocks[i].end()) {
        blocks[i].push_back(block);
      }
    }
  }
  return blocks;
}

void RowClusterer::Train(const ClassRowSet& rows,
                         const std::vector<int>& gold_cluster_of_row,
                         util::Rng& rng) {
  RowMetricBank bank(rows, options_.enabled_metrics);
  const auto blocks = BuildBlocks(rows);

  // Block -> rows map for hard-negative mining.
  std::unordered_map<int32_t, std::vector<int>> rows_by_block;
  for (size_t i = 0; i < blocks.size(); ++i) {
    for (int32_t b : blocks[i]) {
      rows_by_block[b].push_back(static_cast<int>(i));
    }
  }

  std::vector<ml::Example> examples;
  auto add_pair = [&](int i, int j, bool positive) {
    ml::Example ex;
    ex.features = bank.Compare(i, j);
    ex.target = positive ? 1.0 : -1.0;
    examples.push_back(std::move(ex));
  };

  // Positive pairs: all same-cluster pairs of annotated rows.
  std::unordered_map<int, std::vector<int>> rows_by_cluster;
  for (size_t i = 0; i < gold_cluster_of_row.size(); ++i) {
    if (gold_cluster_of_row[i] >= 0) {
      rows_by_cluster[gold_cluster_of_row[i]].push_back(static_cast<int>(i));
    }
  }
  for (const auto& [cluster, members] : rows_by_cluster) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (examples.size() >= options_.max_training_pairs) break;
        add_pair(members[i], members[j], true);
      }
    }
  }

  // Negative pairs: block-sharing annotated rows from different clusters
  // (the hard cases blocking lets through).
  for (const auto& [block, members] : rows_by_block) {
    for (size_t i = 0; i < members.size(); ++i) {
      const int ci = gold_cluster_of_row[members[i]];
      if (ci < 0) continue;
      for (size_t j = i + 1; j < members.size(); ++j) {
        const int cj = gold_cluster_of_row[members[j]];
        if (cj < 0 || ci == cj) continue;
        if (examples.size() >= options_.max_training_pairs) break;
        add_pair(members[i], members[j], false);
      }
    }
  }

  // A sprinkle of random easy negatives keeps the scale calibrated.
  const size_t random_negatives =
      std::min<size_t>(examples.size() / 2 + 1, 2000);
  const size_t n = rows.rows.size();
  for (size_t k = 0; k < random_negatives && n >= 2; ++k) {
    const int i = static_cast<int>(rng.NextBounded(n));
    const int j = static_cast<int>(rng.NextBounded(n));
    if (i == j) continue;
    const int ci = gold_cluster_of_row[i], cj = gold_cluster_of_row[j];
    if (ci < 0 || cj < 0 || ci == cj) continue;
    add_pair(i, j, false);
  }

  aggregator_.Train(std::move(examples), options_.aggregation, rng);

  // ---- Cluster-level threshold calibration ------------------------------
  // Pairwise training calibrates the sign of individual pair scores, but
  // the greedy correlation clusterer sums scores over cluster members, so
  // a small systematic bias compounds into over- or under-merging. Sweep a
  // score offset on the learning rows and keep the one maximizing a
  // count-penalized pairwise F1 (the clustering analogue of the paper's
  // learned decision threshold).
  std::vector<bool> annotated(rows.rows.size(), false);
  size_t num_annotated = 0;
  for (size_t i = 0; i < gold_cluster_of_row.size(); ++i) {
    if (gold_cluster_of_row[i] >= 0) {
      annotated[i] = true;
      ++num_annotated;
    }
  }
  if (num_annotated < 10) return;
  const ClassRowSet learning_rows = FilterRows(rows, annotated);
  std::vector<int> learning_gold;
  for (size_t i = 0; i < rows.rows.size(); ++i) {
    if (annotated[i]) learning_gold.push_back(gold_cluster_of_row[i]);
  }
  std::unordered_map<int, int> gold_sizes;
  for (int g : learning_gold) gold_sizes[g] += 1;

  double best_objective = -1.0;
  double best_offset = 0.0;
  const RowMetricBank learning_bank(learning_rows, options_.enabled_metrics);
  for (double offset : {-0.1, 0.0, 0.1, 0.25}) {
    const auto result = ClusterWithOffset(learning_rows, learning_bank,
                                          offset,
                                          /*count_near_threshold=*/false);
    // Pairwise precision/recall over annotated rows.
    long long tp = 0, fp = 0, fn = 0;
    for (size_t i = 0; i < learning_gold.size(); ++i) {
      for (size_t j = i + 1; j < learning_gold.size(); ++j) {
        const bool same_sys = result.cluster_of[i] == result.cluster_of[j];
        const bool same_gold = learning_gold[i] == learning_gold[j];
        if (same_sys && same_gold) ++tp;
        else if (same_sys && !same_gold) ++fp;
        else if (!same_sys && same_gold) ++fn;
      }
    }
    const double p = tp + fp == 0 ? 1.0 : static_cast<double>(tp) / (tp + fp);
    const double r = tp + fn == 0 ? 1.0 : static_cast<double>(tp) / (tp + fn);
    const double pair_f1 = p + r == 0.0 ? 0.0 : 2 * p * r / (p + r);
    const double count_ratio =
        std::min<double>(gold_sizes.size(), result.num_clusters) /
        std::max<double>(1.0, std::max<double>(gold_sizes.size(),
                                               result.num_clusters));
    const double objective = pair_f1 * count_ratio;
    if (objective > best_objective) {
      best_objective = objective;
      best_offset = offset;
    }
  }
  score_offset_ = best_offset;
}

cluster::ClusteringResult RowClusterer::Cluster(
    const ClassRowSet& rows) const {
  RowMetricBank bank(rows, options_.enabled_metrics);
  cluster::ClusteringResult result = ClusterWithOffset(
      rows, bank, score_offset_, /*count_near_threshold=*/true);
  if (prov::IsEnabled()) RecordClusterDecisions(rows, bank, result);
  if (result.num_clusters > 0) {
    std::vector<uint64_t> sizes(static_cast<size_t>(result.num_clusters), 0);
    for (int c : result.cluster_of) {
      if (c >= 0 && c < result.num_clusters) ++sizes[static_cast<size_t>(c)];
    }
    util::Histogram& hist = util::Metrics().GetHistogram(
        "ltee.rowcluster.cluster_size", util::ExponentialBuckets(1.0, 2.0, 10));
    for (uint64_t size : sizes) hist.Observe(static_cast<double>(size));
  }
  return result;
}

namespace {

/// Above this row count the dense pair-score table (n^2/2 doubles) is no
/// longer worth its memory; fall back to the memoized hash cache.
constexpr size_t kDensePairLimit = 4096;

/// Index of pair (i, j), i < j, in an upper-triangular row-major layout.
inline size_t TriIndex(size_t i, size_t j, size_t n) {
  return i * (2 * n - i - 1) / 2 + (j - i - 1);
}

}  // namespace

namespace {

/// Call-local pair-cache tallies. Lookups bump these relaxed atomics (one
/// shared struct per ClusterWithOffset call, so contention stays within
/// that call's workers) and the totals are flushed to the registry once
/// clustering finishes — the hot path never touches registry counters.
struct PairCacheStats {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  /// Computed pair scores whose magnitude fell inside the near-threshold
  /// margin (each unique pair tallied once, at first computation).
  std::atomic<uint64_t> near_threshold{0};
};

/// Flushes one call's tallies into `ltee.rowcluster.pair_cache.*` and
/// refreshes the process-wide hit-ratio gauge. `flush_near_threshold`
/// additionally folds the near-threshold tally into the
/// `ltee.prov.cluster_decisions_near_threshold` quality counter.
void FlushPairCacheStats(const PairCacheStats& stats,
                         bool flush_near_threshold) {
  const uint64_t hits = stats.hits.load(std::memory_order_relaxed);
  const uint64_t misses = stats.misses.load(std::memory_order_relaxed);
  util::MetricsRegistry& metrics = util::Metrics();
  if (flush_near_threshold) {
    metrics.GetCounter("ltee.prov.cluster_decisions_near_threshold")
        .Increment(stats.near_threshold.load(std::memory_order_relaxed));
  }
  util::Counter& hit_counter =
      metrics.GetCounter("ltee.rowcluster.pair_cache.hits");
  util::Counter& miss_counter =
      metrics.GetCounter("ltee.rowcluster.pair_cache.misses");
  hit_counter.Increment(hits);
  miss_counter.Increment(misses);
  const uint64_t total_hits = hit_counter.value();
  const uint64_t total = total_hits + miss_counter.value();
  if (total > 0) {
    metrics.GetGauge("ltee.rowcluster.pair_cache.hit_ratio")
        .Set(static_cast<double>(total_hits) / static_cast<double>(total));
  }
}

}  // namespace

cluster::ClusteringResult RowClusterer::ClusterWithOffset(
    const ClassRowSet& rows, const RowMetricBank& bank, double offset,
    bool count_near_threshold) const {
  const auto blocks = BuildBlocks(rows);
  const size_t n = rows.rows.size();
  const auto* aggregator = &aggregator_;
  auto score_pair = [&bank, aggregator, offset](int i, int j) -> double {
    return std::clamp(aggregator->Score(bank.Compare(i, j)) + offset, -1.0,
                      1.0);
  };

  util::trace::ScopedSpan span("rowcluster.cluster");
  span.AddArg("rows", n);
  auto stats = std::make_shared<PairCacheStats>();
  const double near_margin = options_.near_threshold_margin;
  auto tally_near = [stats, near_margin](double s) {
    if (s > -near_margin && s < near_margin) {
      stats->near_threshold.fetch_add(1, std::memory_order_relaxed);
    }
  };

  // The greedy and KLj phases revisit pairs many times. Each pair score is
  // a pure function of (i, j), so for moderate row counts a lazy dense
  // triangular cache serves repeat lookups lock-free: NaN marks "not yet
  // computed", and a racing duplicate computation stores the identical
  // value, so no synchronization beyond the atomic slot is needed.
  if (n >= 2 && n <= kDensePairLimit) {
    const size_t num_pairs = n * (n - 1) / 2;
    const size_t dense_bytes = num_pairs * sizeof(std::atomic<double>);
    span.AddArg("pair_cache", "dense");
    span.AddArg("dense_bytes", dense_bytes);
    util::Metrics()
        .GetGauge("ltee.rowcluster.pair_cache.dense_bytes")
        .Max(static_cast<double>(dense_bytes));
    if (dense_bytes > options_.dense_cache_byte_budget) {
      LTEE_LOG(kWarning) << "dense pair cache for " << n << " rows needs "
                         << dense_bytes << " bytes, over the configured "
                         << "budget of " << options_.dense_cache_byte_budget
                         << " bytes; allocating anyway (raise "
                         << "RowClustererOptions::dense_cache_byte_budget "
                         << "to silence)";
    }
    auto scores =
        std::make_shared<std::unique_ptr<std::atomic<double>[]>>(
            new std::atomic<double>[num_pairs]);
    for (size_t k = 0; k < num_pairs; ++k) {
      (*scores)[k].store(std::numeric_limits<double>::quiet_NaN(),
                         std::memory_order_relaxed);
    }
    auto similarity = [scores, score_pair, stats, tally_near,
                       n](int i, int j) -> double {
      const size_t lo = static_cast<size_t>(std::min(i, j));
      const size_t hi = static_cast<size_t>(std::max(i, j));
      std::atomic<double>& slot = (*scores)[TriIndex(lo, hi, n)];
      double s = slot.load(std::memory_order_relaxed);
      if (!std::isnan(s)) {
        stats->hits.fetch_add(1, std::memory_order_relaxed);
        return s;
      }
      stats->misses.fetch_add(1, std::memory_order_relaxed);
      // Caller argument order matters: ATTRIBUTE and IMPLICIT_ATT are not
      // perfectly symmetric, and the cached value has always been the one
      // computed at the pair's first encounter.
      s = score_pair(i, j);
      tally_near(s);
      slot.store(s, std::memory_order_relaxed);
      return s;
    };
    auto result = cluster::ClusterCorrelation(n, similarity, blocks,
                                              options_.clustering);
    FlushPairCacheStats(*stats, count_near_threshold);
    span.AddArg("clusters", static_cast<long long>(result.num_clusters));
    return result;
  }

  // Memoized, thread-safe pair score cache for large row sets.
  span.AddArg("pair_cache", "hashed");
  struct Cache {
    std::unordered_map<uint64_t, double> scores;
    std::mutex mu;
  };
  auto cache = std::make_shared<Cache>();
  auto similarity = [cache, score_pair, stats, tally_near](int i,
                                                           int j) -> double {
    const uint64_t key = (static_cast<uint64_t>(std::min(i, j)) << 32) |
                         static_cast<uint64_t>(std::max(i, j));
    {
      std::lock_guard<std::mutex> lock(cache->mu);
      auto it = cache->scores.find(key);
      if (it != cache->scores.end()) {
        stats->hits.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    stats->misses.fetch_add(1, std::memory_order_relaxed);
    const double score = score_pair(i, j);
    tally_near(score);
    {
      std::lock_guard<std::mutex> lock(cache->mu);
      cache->scores.emplace(key, score);
    }
    return score;
  };

  auto result = cluster::ClusterCorrelation(n, similarity, blocks,
                                            options_.clustering);
  FlushPairCacheStats(*stats, count_near_threshold);
  span.AddArg("clusters", static_cast<long long>(result.num_clusters));
  return result;
}

void RowClusterer::RecordClusterDecisions(
    const ClassRowSet& rows, const RowMetricBank& bank,
    const cluster::ClusteringResult& result) const {
  // Emitted after clustering (never from the parallel similarity lambdas)
  // so the event set and order are pure functions of the clustering — the
  // ledger export stays byte-identical across fixed-seed runs.
  const auto names = bank.EnabledNames();
  std::vector<std::vector<int>> members(
      static_cast<size_t>(std::max(0, result.num_clusters)));
  for (size_t i = 0; i < result.cluster_of.size(); ++i) {
    const int c = result.cluster_of[i];
    if (c >= 0 && c < result.num_clusters) {
      members[static_cast<size_t>(c)].push_back(static_cast<int>(i));
    }
  }
  // Support = best similarity to a co-member; a capped scan keeps the
  // ledger pass linear in cluster size for degenerate mega-clusters, and
  // a per-cluster pair memo avoids scoring each scanned pair from both
  // ends (this pass is the bulk of the ledger's end-to-end overhead).
  constexpr size_t kSupportScanCap = 8;
  std::unordered_map<uint64_t, double> pair_scores;
  for (size_t c = 0; c < members.size(); ++c) {
    pair_scores.clear();
    const auto score_of = [&](int a, int b) {
      const uint64_t key =
          (static_cast<uint64_t>(static_cast<uint32_t>(std::min(a, b)))
           << 32) |
          static_cast<uint32_t>(std::max(a, b));
      if (const auto it = pair_scores.find(key); it != pair_scores.end()) {
        return it->second;
      }
      const double s = std::clamp(
          aggregator_.Score(bank.Compare(a, b)) + score_offset_, -1.0, 1.0);
      pair_scores.emplace(key, s);
      return s;
    };
    for (int i : members[c]) {
      prov::ClusterDecision decision;
      decision.cls = rows.cls;
      decision.table = rows.rows[static_cast<size_t>(i)].ref.table;
      decision.row = rows.rows[static_cast<size_t>(i)].ref.row;
      decision.cluster_id = static_cast<int>(c);
      decision.cluster_size = static_cast<int>(members[c].size());
      decision.threshold = score_offset_;
      double best = 0.0;
      int best_j = -1;
      size_t scanned = 0;
      for (int j : members[c]) {
        if (j == i) continue;
        if (++scanned > kSupportScanCap) break;
        const double s = score_of(i, j);
        if (best_j < 0 || s > best) {
          best = s;
          best_j = j;
        }
      }
      if (best_j >= 0) {
        decision.support = best;
        decision.support_table = rows.rows[static_cast<size_t>(best_j)].ref.table;
        decision.support_row = rows.rows[static_cast<size_t>(best_j)].ref.row;
        const auto features = bank.Compare(i, best_j);
        for (size_t m = 0; m < features.sims.size() && m < names.size(); ++m) {
          decision.components.emplace_back(names[m], features.sims[m]);
        }
      }
      prov::Record(std::move(decision));
    }
  }
}

}  // namespace ltee::rowcluster
