#include "rowcluster/row_features.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "matching/attribute_matchers.h"
#include "util/similarity.h"

namespace ltee::rowcluster {

const types::Value* RowFeature::ValueOf(kb::PropertyId property) const {
  for (const auto& rv : values) {
    if (rv.property == property) return &rv.value;
  }
  return nullptr;
}

namespace {

/// Derives the implicit attributes of one table: property-value
/// combinations present for at least one label candidate of a large enough
/// fraction of rows.
std::vector<ImplicitAttribute> DeriveImplicitAttributes(
    const webtable::PreparedTable& table, int label_column,
    const kb::KnowledgeBase& kb, const index::LabelIndex& kb_index,
    const RowFeatureOptions& options) {
  std::vector<ImplicitAttribute> out;
  if (label_column < 0 || table.num_rows == 0) return out;
  const util::TokenDictionary& dict = kb_index.dict();

  struct ComboStat {
    types::Value value;
    kb::PropertyId property;
    int rows = 0;
  };
  std::unordered_map<std::string, ComboStat> combos;

  int considered_rows = 0;
  for (size_t r = 0; r < table.num_rows; ++r) {
    const webtable::PreparedCell& label =
        table.cell(r, static_cast<size_t>(label_column));
    if (label.empty) continue;
    ++considered_rows;
    // Property-value combinations of any candidate instance of this row.
    std::unordered_set<std::string> row_combos;
    std::unordered_map<std::string, ComboStat> row_new;
    for (const auto& hit :
         kb_index.Search(label.tokens, options.implicit_candidates_per_row)) {
      const kb::Instance& inst = kb.instance(static_cast<int>(hit.doc));
      double best_sim = 0.0;
      for (const auto& inst_tokens : kb_index.LabelTokensOf(hit.doc)) {
        best_sim = std::max(best_sim, util::MongeElkanLevenshtein(
                                          label.tokens, inst_tokens, dict));
      }
      if (best_sim < options.implicit_label_similarity) continue;
      for (const auto& fact : inst.facts) {
        std::string key = std::to_string(fact.property) + "|" +
                          matching::ExactValueKey(fact.value);
        if (row_combos.insert(key).second) {
          auto it = row_new.find(key);
          if (it == row_new.end()) {
            row_new.emplace(key,
                            ComboStat{fact.value, fact.property, 1});
          }
        }
      }
    }
    for (auto& [key, stat] : row_new) {
      auto [it, inserted] = combos.emplace(key, stat);
      if (!inserted) it->second.rows += 1;
    }
  }
  if (considered_rows == 0) return out;

  for (auto& [key, stat] : combos) {
    const double score =
        static_cast<double>(stat.rows) / static_cast<double>(considered_rows);
    if (score >= options.implicit_score_threshold) {
      out.push_back({stat.property, std::move(stat.value), score});
    }
  }
  return out;
}

}  // namespace

ClassRowSet FilterRows(const ClassRowSet& rows,
                       const std::vector<bool>& keep) {
  ClassRowSet out;
  out.cls = rows.cls;
  out.dict = rows.dict;
  out.tables = rows.tables;
  out.table_implicit = rows.table_implicit;
  out.table_phi = rows.table_phi;
  for (size_t i = 0; i < rows.rows.size(); ++i) {
    if (i < keep.size() && keep[i]) out.rows.push_back(rows.rows[i]);
  }
  return out;
}

ClassRowSet BuildClassRowSet(const webtable::PreparedCorpus& prepared,
                             const matching::SchemaMapping& mapping,
                             kb::ClassId cls, const kb::KnowledgeBase& kb,
                             const index::LabelIndex& kb_index,
                             const RowFeatureOptions& options) {
  // Token ids are only meaningful across components when everyone resolves
  // them against the same dictionary.
  assert(&kb_index.dict() == &prepared.dict());
  ClassRowSet out;
  out.cls = cls;
  out.dict = prepared.dict_ptr();

  for (const auto& table_mapping : mapping.tables) {
    if (table_mapping.cls != cls || table_mapping.label_column < 0) continue;
    const webtable::PreparedTable& table = prepared.table(table_mapping.table);
    const webtable::WebTable& raw_table =
        prepared.corpus().table(table_mapping.table);
    const int table_index = static_cast<int>(out.tables.size());
    out.tables.push_back(table_mapping.table);
    out.table_implicit.push_back(DeriveImplicitAttributes(
        table, table_mapping.label_column, kb, kb_index, options));

    for (size_t r = 0; r < table.num_rows; ++r) {
      const webtable::PreparedCell& label_cell =
          table.cell(r, static_cast<size_t>(table_mapping.label_column));
      if (label_cell.normalized.empty()) continue;  // unusable row
      RowFeature row;
      row.ref = {table_mapping.table, static_cast<int32_t>(r)};
      row.table_index = table_index;
      row.raw_label =
          raw_table.cell(r, static_cast<size_t>(table_mapping.label_column));
      row.normalized_label = label_cell.normalized;
      row.label_tokens = label_cell.tokens;
      for (size_t c = 0; c < table.num_columns; ++c) {
        const webtable::PreparedCell& cell = table.cell(r, c);
        row.bow.insert(row.bow.end(), cell.token_set.begin(),
                       cell.token_set.end());
        const matching::ColumnMatch& match = table_mapping.columns[c];
        if (match.property == kb::kInvalidProperty ||
            static_cast<int>(c) == table_mapping.label_column) {
          continue;
        }
        const auto& value = cell.parsed_as(kb.property(match.property).type);
        if (value) {
          row.values.push_back({match.property, static_cast<int>(c), *value});
        }
      }
      row.bow = util::SortedUnique(std::move(row.bow));
      out.rows.push_back(std::move(row));
    }
  }

  // ---- PHI vectors -------------------------------------------------------
  // Label ids over the class row set.
  std::unordered_map<std::string, uint32_t> label_ids;
  std::vector<std::vector<uint32_t>> table_labels(out.tables.size());
  for (const auto& row : out.rows) {
    auto [it, inserted] = label_ids.emplace(
        row.normalized_label, static_cast<uint32_t>(label_ids.size()));
    auto& labels = table_labels[row.table_index];
    if (labels.size() < options.phi_max_rows_per_table &&
        std::find(labels.begin(), labels.end(), it->second) == labels.end()) {
      labels.push_back(it->second);
    }
  }
  const double n = static_cast<double>(label_ids.size());
  // Per-label table occurrence counts and pair co-occurrence counts.
  std::vector<double> occurrence(label_ids.size(), 0.0);
  std::unordered_map<uint64_t, double> co_occurrence;
  for (const auto& labels : table_labels) {
    for (uint32_t a : labels) occurrence[a] += 1.0;
    for (size_t i = 0; i < labels.size(); ++i) {
      for (size_t j = i + 1; j < labels.size(); ++j) {
        const uint32_t lo = std::min(labels[i], labels[j]);
        const uint32_t hi = std::max(labels[i], labels[j]);
        co_occurrence[(static_cast<uint64_t>(lo) << 32) | hi] += 1.0;
      }
    }
  }
  // Sparse PHI vector per label, built from the co-occurrence pairs.
  std::vector<std::unordered_map<uint32_t, double>> label_phi(
      label_ids.size());
  for (const auto& [key, nxy] : co_occurrence) {
    const uint32_t x = static_cast<uint32_t>(key >> 32);
    const uint32_t y = static_cast<uint32_t>(key & 0xffffffffu);
    const double nx = occurrence[x], ny = occurrence[y];
    const double denom = std::sqrt(nx * ny * (n - nx) * (n - ny));
    if (denom <= 0.0) continue;
    const double phi = (n * nxy - nx * ny) / denom;
    label_phi[x][y] = phi;
    label_phi[y][x] = phi;
  }
  // Table vector = average of its labels' vectors.
  out.table_phi.resize(out.tables.size());
  for (size_t t = 0; t < table_labels.size(); ++t) {
    auto& vec = out.table_phi[t];
    const auto& labels = table_labels[t];
    if (labels.empty()) continue;
    for (uint32_t l : labels) {
      for (const auto& [other, phi] : label_phi[l]) {
        vec[other] += phi / static_cast<double>(labels.size());
      }
    }
  }
  return out;
}

}  // namespace ltee::rowcluster
