#ifndef LTEE_ROWCLUSTER_ROW_METRICS_H_
#define LTEE_ROWCLUSTER_ROW_METRICS_H_

#include <string>
#include <vector>

#include "ml/dataset.h"
#include "rowcluster/row_features.h"

namespace ltee::rowcluster {

/// The six row similarity metrics of Section 3.2, in the order the paper's
/// Table 7 aggregates them.
enum class RowMetric {
  kLabel = 0,
  kBow = 1,
  kPhi = 2,
  kAttribute = 3,
  kImplicitAtt = 4,
  kSameTable = 5,
};
inline constexpr int kNumRowMetrics = 6;
const char* RowMetricName(RowMetric metric);

/// Computes the enabled row-metric scores for a pair of rows of one
/// ClassRowSet. Metrics returning -1 are "not applicable" for the pair
/// (e.g. ATTRIBUTE without overlapping value pairs); confidences are 0 for
/// metrics that attach none.
class RowMetricBank {
 public:
  /// `enabled[i]` toggles metric i; the produced feature vectors contain
  /// one slot per *enabled* metric, in metric order.
  RowMetricBank(const ClassRowSet& rows, std::vector<bool> enabled);

  /// Similarity/confidence features of the pair (i, j).
  ml::ScoredFeatures Compare(int i, int j) const;

  int num_enabled() const { return num_enabled_; }
  const std::vector<bool>& enabled() const { return enabled_; }

  /// Names of the enabled metrics, in feature order.
  std::vector<std::string> EnabledNames() const;

 private:
  /// LABEL via the precomputed token-similarity matrix; bit-identical to
  /// util::MongeElkanLevenshtein over the same tokens.
  double LabelSimilarity(int i, int j) const;

  const ClassRowSet* rows_;
  std::vector<bool> enabled_;
  int num_enabled_ = 0;

  // LABEL fast path: label token ids remapped to a dense local vocabulary,
  // with all pairwise Levenshtein similarities precomputed once. Class row
  // sets reuse a small label vocabulary across hundreds of thousands of row
  // pairs, so this turns the Monge-Elkan inner loop into table lookups.
  // Disabled (empty) when the vocabulary is too large or rows lack a dict.
  std::vector<std::vector<uint32_t>> label_local_;  // per row, dense ids
  std::vector<double> token_sim_;                   // vocab_ * vocab_
  size_t vocab_ = 0;

  // PHI fast path: the metric only depends on the two table indices, so the
  // full table-by-table cosine matrix is precomputed up front.
  std::vector<double> phi_sim_;  // num_tables_ * num_tables_
  size_t num_tables_ = 0;
};

/// Convenience: mask enabling the first `k` metrics (the paper's Table 7
/// ablation rows), or all six when k >= 6.
std::vector<bool> FirstKMetrics(int k);

}  // namespace ltee::rowcluster

#endif  // LTEE_ROWCLUSTER_ROW_METRICS_H_
