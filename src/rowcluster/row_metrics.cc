#include "rowcluster/row_metrics.h"

#include <algorithm>
#include <string_view>
#include <unordered_map>

#include "types/type_similarity.h"
#include "util/metrics.h"
#include "util/similarity.h"
#include "util/trace.h"

namespace ltee::rowcluster {

const char* RowMetricName(RowMetric metric) {
  switch (metric) {
    case RowMetric::kLabel: return "LABEL";
    case RowMetric::kBow: return "BOW";
    case RowMetric::kPhi: return "PHI";
    case RowMetric::kAttribute: return "ATTRIBUTE";
    case RowMetric::kImplicitAtt: return "IMPLICIT_ATT";
    case RowMetric::kSameTable: return "SAME_TABLE";
  }
  return "?";
}

std::vector<bool> FirstKMetrics(int k) {
  std::vector<bool> mask(kNumRowMetrics, false);
  for (int i = 0; i < std::min(k, kNumRowMetrics); ++i) mask[i] = true;
  return mask;
}

namespace {

/// Vocabularies larger than this skip the LABEL precompute: the quadratic
/// similarity matrix would cost more than it saves.
constexpr size_t kMaxLabelVocab = 2048;

}  // namespace

RowMetricBank::RowMetricBank(const ClassRowSet& rows,
                             std::vector<bool> enabled)
    : rows_(&rows), enabled_(std::move(enabled)) {
  util::trace::ScopedSpan span("rowcluster.metric_bank");
  span.AddArg("rows", rows.rows.size());
  enabled_.resize(kNumRowMetrics, false);
  for (bool b : enabled_) num_enabled_ += b ? 1 : 0;

  if (enabled_[static_cast<int>(RowMetric::kLabel)] && rows.dict != nullptr) {
    // Dense remap of every token id appearing in a row label, in first
    // appearance order (the order does not affect the similarity values).
    std::unordered_map<uint32_t, uint32_t> local_of;
    label_local_.reserve(rows.rows.size());
    for (const auto& row : rows.rows) {
      std::vector<uint32_t> local(row.label_tokens.size());
      for (size_t t = 0; t < row.label_tokens.size(); ++t) {
        auto [it, inserted] = local_of.emplace(
            row.label_tokens[t], static_cast<uint32_t>(local_of.size()));
        local[t] = it->second;
      }
      label_local_.push_back(std::move(local));
    }
    vocab_ = local_of.size();
    if (vocab_ == 0 || vocab_ > kMaxLabelVocab) {
      vocab_ = 0;
      label_local_.clear();
    } else {
      std::vector<std::string_view> token_str(vocab_);
      for (const auto& [id, local] : local_of) {
        token_str[local] = rows.dict->token(id);
      }
      util::Metrics()
          .GetGauge("ltee.rowcluster.metric_bank.token_sim_bytes")
          .Max(static_cast<double>(vocab_ * vocab_ * sizeof(double)));
      token_sim_.assign(vocab_ * vocab_, 1.0);
      for (size_t x = 0; x < vocab_; ++x) {
        for (size_t y = x + 1; y < vocab_; ++y) {
          const double sim =
              util::LevenshteinSimilarity(token_str[x], token_str[y]);
          token_sim_[x * vocab_ + y] = sim;
          token_sim_[y * vocab_ + x] = sim;
        }
      }
    }
  }

  if (enabled_[static_cast<int>(RowMetric::kPhi)]) {
    num_tables_ = rows.table_phi.size();
    util::Metrics()
        .GetGauge("ltee.rowcluster.metric_bank.phi_sim_bytes")
        .Max(static_cast<double>(num_tables_ * num_tables_ * sizeof(double)));
    phi_sim_.assign(num_tables_ * num_tables_, 0.0);
    // Both ordered directions are computed: CosineSparse accumulates the
    // dot product over whichever map it iterates first, so (x, y) and
    // (y, x) can differ in the last bit when the maps have equal size.
    for (size_t x = 0; x < num_tables_; ++x) {
      for (size_t y = 0; y < num_tables_; ++y) {
        phi_sim_[x * num_tables_ + y] =
            util::CosineSparse(rows.table_phi[x], rows.table_phi[y]);
      }
    }
  }
  span.AddArg("label_vocab", vocab_);
  span.AddArg("phi_tables", num_tables_);
}

double RowMetricBank::LabelSimilarity(int i, int j) const {
  if (vocab_ == 0) {
    return util::MongeElkanLevenshtein(rows_->rows[i].label_tokens,
                                       rows_->rows[j].label_tokens,
                                       *rows_->dict);
  }
  const std::vector<uint32_t>& ta = label_local_[i];
  const std::vector<uint32_t>& tb = label_local_[j];
  // Mirrors MongeElkanDirectedIds in util/similarity.cc: same loop order,
  // same early-out on equal tokens, same accumulation — the doubles match
  // the dict-resolving implementation bit for bit.
  auto directed = [this](const std::vector<uint32_t>& x,
                         const std::vector<uint32_t>& y) -> double {
    if (x.empty()) return y.empty() ? 1.0 : 0.0;
    double sum = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      double best = 0.0;
      for (size_t j = 0; j < y.size(); ++j) {
        if (x[i] == y[j]) {
          best = 1.0;
          break;
        }
        best = std::max(best, token_sim_[x[i] * vocab_ + y[j]]);
      }
      sum += best;
    }
    return sum / static_cast<double>(x.size());
  };
  return std::max(directed(ta, tb), directed(tb, ta));
}

std::vector<std::string> RowMetricBank::EnabledNames() const {
  std::vector<std::string> out;
  for (int m = 0; m < kNumRowMetrics; ++m) {
    if (enabled_[m]) out.push_back(RowMetricName(static_cast<RowMetric>(m)));
  }
  return out;
}

namespace {

const types::TypeSimilarityOptions kSimOptions;

/// ATTRIBUTE: average type-equality of overlapping value pairs, with the
/// number of compared pairs as confidence.
std::pair<double, double> AttributeSimilarity(const RowFeature& a,
                                              const RowFeature& b) {
  int pairs = 0;
  double sum = 0.0;
  for (const auto& rv : a.values) {
    const types::Value* other = b.ValueOf(rv.property);
    if (other == nullptr) continue;
    ++pairs;
    sum += types::ValuesEqual(rv.value, *other, kSimOptions) ? 1.0 : 0.0;
  }
  if (pairs == 0) return {-1.0, 0.0};
  return {sum / pairs, static_cast<double>(pairs)};
}

/// One direction of IMPLICIT_ATT: implicit attributes of `a`'s table
/// against column values and implicit attributes of `b`.
void CompareImplicitDirected(const ClassRowSet& rows, const RowFeature& a,
                             const RowFeature& b, double* sum, double* count,
                             double* confidence) {
  for (const auto& implicit : rows.table_implicit[a.table_index]) {
    // Overlap against b's explicit column values.
    const types::Value* value = b.ValueOf(implicit.property);
    bool compared = false;
    double equal = 0.0;
    if (value != nullptr) {
      compared = true;
      equal = types::ValuesEqual(implicit.value, *value, kSimOptions) ? 1.0
                                                                      : 0.0;
    } else {
      // Overlap against b's table-level implicit attributes.
      for (const auto& other : rows.table_implicit[b.table_index]) {
        if (other.property != implicit.property) continue;
        compared = true;
        equal = types::ValuesEqual(implicit.value, other.value, kSimOptions)
                    ? 1.0
                    : 0.0;
        break;
      }
    }
    if (compared) {
      *sum += equal;
      *count += 1.0;
      *confidence += implicit.score;
    }
  }
}

std::pair<double, double> ImplicitSimilarity(const ClassRowSet& rows,
                                             const RowFeature& a,
                                             const RowFeature& b) {
  if (a.table_index == b.table_index) return {-1.0, 0.0};
  double sum = 0.0, count = 0.0, confidence = 0.0;
  CompareImplicitDirected(rows, a, b, &sum, &count, &confidence);
  CompareImplicitDirected(rows, b, a, &sum, &count, &confidence);
  if (count == 0.0) return {-1.0, 0.0};
  return {sum / count, confidence};
}

}  // namespace

ml::ScoredFeatures RowMetricBank::Compare(int i, int j) const {
  const RowFeature& a = rows_->rows[i];
  const RowFeature& b = rows_->rows[j];
  ml::ScoredFeatures out;
  out.sims.reserve(num_enabled_);
  out.confs.reserve(num_enabled_);

  auto push = [&out](double sim, double conf) {
    out.sims.push_back(sim);
    out.confs.push_back(conf);
  };

  if (enabled_[static_cast<int>(RowMetric::kLabel)]) {
    push(LabelSimilarity(i, j), 0.0);
  }
  if (enabled_[static_cast<int>(RowMetric::kBow)]) {
    push(util::CosineBinary(a.bow, b.bow), 0.0);
  }
  if (enabled_[static_cast<int>(RowMetric::kPhi)]) {
    push(num_tables_ == 0
             ? util::CosineSparse(rows_->table_phi[a.table_index],
                                  rows_->table_phi[b.table_index])
             : phi_sim_[a.table_index * num_tables_ + b.table_index],
         0.0);
  }
  if (enabled_[static_cast<int>(RowMetric::kAttribute)]) {
    auto [sim, conf] = AttributeSimilarity(a, b);
    push(sim, conf);
  }
  if (enabled_[static_cast<int>(RowMetric::kImplicitAtt)]) {
    auto [sim, conf] = ImplicitSimilarity(*rows_, a, b);
    push(sim, conf);
  }
  if (enabled_[static_cast<int>(RowMetric::kSameTable)]) {
    push(a.table_index == b.table_index ? 0.0 : 1.0, 0.0);
  }
  return out;
}

}  // namespace ltee::rowcluster
