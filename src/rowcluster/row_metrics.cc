#include "rowcluster/row_metrics.h"

#include <algorithm>

#include "types/type_similarity.h"
#include "util/similarity.h"

namespace ltee::rowcluster {

const char* RowMetricName(RowMetric metric) {
  switch (metric) {
    case RowMetric::kLabel: return "LABEL";
    case RowMetric::kBow: return "BOW";
    case RowMetric::kPhi: return "PHI";
    case RowMetric::kAttribute: return "ATTRIBUTE";
    case RowMetric::kImplicitAtt: return "IMPLICIT_ATT";
    case RowMetric::kSameTable: return "SAME_TABLE";
  }
  return "?";
}

std::vector<bool> FirstKMetrics(int k) {
  std::vector<bool> mask(kNumRowMetrics, false);
  for (int i = 0; i < std::min(k, kNumRowMetrics); ++i) mask[i] = true;
  return mask;
}

RowMetricBank::RowMetricBank(const ClassRowSet& rows,
                             std::vector<bool> enabled)
    : rows_(&rows), enabled_(std::move(enabled)) {
  enabled_.resize(kNumRowMetrics, false);
  for (bool b : enabled_) num_enabled_ += b ? 1 : 0;
}

std::vector<std::string> RowMetricBank::EnabledNames() const {
  std::vector<std::string> out;
  for (int m = 0; m < kNumRowMetrics; ++m) {
    if (enabled_[m]) out.push_back(RowMetricName(static_cast<RowMetric>(m)));
  }
  return out;
}

namespace {

const types::TypeSimilarityOptions kSimOptions;

/// ATTRIBUTE: average type-equality of overlapping value pairs, with the
/// number of compared pairs as confidence.
std::pair<double, double> AttributeSimilarity(const RowFeature& a,
                                              const RowFeature& b) {
  int pairs = 0;
  double sum = 0.0;
  for (const auto& rv : a.values) {
    const types::Value* other = b.ValueOf(rv.property);
    if (other == nullptr) continue;
    ++pairs;
    sum += types::ValuesEqual(rv.value, *other, kSimOptions) ? 1.0 : 0.0;
  }
  if (pairs == 0) return {-1.0, 0.0};
  return {sum / pairs, static_cast<double>(pairs)};
}

/// One direction of IMPLICIT_ATT: implicit attributes of `a`'s table
/// against column values and implicit attributes of `b`.
void CompareImplicitDirected(const ClassRowSet& rows, const RowFeature& a,
                             const RowFeature& b, double* sum, double* count,
                             double* confidence) {
  for (const auto& implicit : rows.table_implicit[a.table_index]) {
    // Overlap against b's explicit column values.
    const types::Value* value = b.ValueOf(implicit.property);
    bool compared = false;
    double equal = 0.0;
    if (value != nullptr) {
      compared = true;
      equal = types::ValuesEqual(implicit.value, *value, kSimOptions) ? 1.0
                                                                      : 0.0;
    } else {
      // Overlap against b's table-level implicit attributes.
      for (const auto& other : rows.table_implicit[b.table_index]) {
        if (other.property != implicit.property) continue;
        compared = true;
        equal = types::ValuesEqual(implicit.value, other.value, kSimOptions)
                    ? 1.0
                    : 0.0;
        break;
      }
    }
    if (compared) {
      *sum += equal;
      *count += 1.0;
      *confidence += implicit.score;
    }
  }
}

std::pair<double, double> ImplicitSimilarity(const ClassRowSet& rows,
                                             const RowFeature& a,
                                             const RowFeature& b) {
  if (a.table_index == b.table_index) return {-1.0, 0.0};
  double sum = 0.0, count = 0.0, confidence = 0.0;
  CompareImplicitDirected(rows, a, b, &sum, &count, &confidence);
  CompareImplicitDirected(rows, b, a, &sum, &count, &confidence);
  if (count == 0.0) return {-1.0, 0.0};
  return {sum / count, confidence};
}

}  // namespace

ml::ScoredFeatures RowMetricBank::Compare(int i, int j) const {
  const RowFeature& a = rows_->rows[i];
  const RowFeature& b = rows_->rows[j];
  ml::ScoredFeatures out;
  out.sims.reserve(num_enabled_);
  out.confs.reserve(num_enabled_);

  auto push = [&out](double sim, double conf) {
    out.sims.push_back(sim);
    out.confs.push_back(conf);
  };

  if (enabled_[static_cast<int>(RowMetric::kLabel)]) {
    push(util::MongeElkanLevenshtein(a.label_tokens, b.label_tokens), 0.0);
  }
  if (enabled_[static_cast<int>(RowMetric::kBow)]) {
    push(util::CosineBinary(a.bow, b.bow), 0.0);
  }
  if (enabled_[static_cast<int>(RowMetric::kPhi)]) {
    push(util::CosineSparse(rows_->table_phi[a.table_index],
                            rows_->table_phi[b.table_index]),
         0.0);
  }
  if (enabled_[static_cast<int>(RowMetric::kAttribute)]) {
    auto [sim, conf] = AttributeSimilarity(a, b);
    push(sim, conf);
  }
  if (enabled_[static_cast<int>(RowMetric::kImplicitAtt)]) {
    auto [sim, conf] = ImplicitSimilarity(*rows_, a, b);
    push(sim, conf);
  }
  if (enabled_[static_cast<int>(RowMetric::kSameTable)]) {
    push(a.table_index == b.table_index ? 0.0 : 1.0, 0.0);
  }
  return out;
}

}  // namespace ltee::rowcluster
