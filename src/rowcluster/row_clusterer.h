#ifndef LTEE_ROWCLUSTER_ROW_CLUSTERER_H_
#define LTEE_ROWCLUSTER_ROW_CLUSTERER_H_

#include <vector>

#include "cluster/correlation_clusterer.h"
#include "ml/aggregator.h"
#include "rowcluster/row_metrics.h"
#include "util/random.h"

namespace ltee::rowcluster {

/// Options of the complete row clustering component.
struct RowClustererOptions {
  /// Metric mask; defaults to all six metrics.
  std::vector<bool> enabled_metrics = FirstKMetrics(kNumRowMetrics);
  ml::AggregationKind aggregation = ml::AggregationKind::kCombined;
  cluster::ClusteringOptions clustering;
  /// Similar labels retrieved per row to form its block set.
  size_t blocking_candidates = 10;
  bool enable_blocking = true;
  /// Cap on training pairs sampled per class.
  size_t max_training_pairs = 20000;
  /// Byte budget for the lazy dense pair-score cache. Exceeding it only
  /// logs a warning (the cache is still allocated — correctness does not
  /// depend on the budget), and the footprint is exported as the
  /// `ltee.rowcluster.pair_cache.dense_bytes` gauge.
  size_t dense_cache_byte_budget = 64u << 20;
  /// Pair scores with |score| below this margin count as near-threshold
  /// decisions (the `ltee.prov.cluster_decisions_near_threshold` quality
  /// counter): the correlation clusterer merges on sign, so these are the
  /// pairs a small quality drift can flip.
  double near_threshold_margin = 0.1;
};

/// Row clustering (Section 3.2): a learned aggregation of six similarity
/// metrics drives a parallel greedy correlation clustering refined by KLj,
/// with label-based blocking.
class RowClusterer {
 public:
  explicit RowClusterer(RowClustererOptions options = {});

  /// Learns the score aggregation from labeled rows. `gold_cluster_of_row`
  /// holds, per row of `rows`, the annotated cluster id (-1 for rows not
  /// annotated — those generate no pairs). Positive pairs are same-cluster
  /// pairs; negatives are block-sharing pairs from different clusters,
  /// upsampled to balance.
  void Train(const ClassRowSet& rows,
             const std::vector<int>& gold_cluster_of_row, util::Rng& rng);

  /// Clusters the rows; requires Train() (or an injected aggregator).
  cluster::ClusteringResult Cluster(const ClassRowSet& rows) const;

  /// Score offset learned by Train(): after aggregation, scores are shifted
  /// by this amount before the correlation clusterer sees them. Calibrated
  /// by sweeping offsets and maximizing a penalized pairwise clustering F1
  /// on the learning rows (counters systematic over-/under-merging).
  double score_offset() const { return score_offset_; }
  void set_score_offset(double offset) { score_offset_ = offset; }

  /// Per-enabled-metric importance (paper's MI column), averaged over the
  /// learned random forest importances and weighted-average weights.
  std::vector<double> MetricImportances() const {
    return aggregator_.MetricImportances();
  }

  const ml::ScoreAggregator& aggregator() const { return aggregator_; }
  ml::ScoreAggregator* mutable_aggregator() { return &aggregator_; }
  const RowClustererOptions& options() const { return options_; }

  /// Builds the per-row block sets used to restrict comparisons. Exposed
  /// for tests and for the blocking ablation bench.
  std::vector<std::vector<int32_t>> BuildBlocks(const ClassRowSet& rows) const;

 private:
  /// `count_near_threshold` flushes the near-threshold tally into the
  /// quality counters; inference passes true, the Train() calibration
  /// sweep false (calibration probes must not skew the drift gauges).
  /// `bank` must be built over `rows`; callers construct it once and
  /// share it across the calibration sweep / the provenance pass.
  cluster::ClusteringResult ClusterWithOffset(
      const ClassRowSet& rows, const RowMetricBank& bank, double offset,
      bool count_near_threshold = false) const;

  /// Emits one prov::ClusterDecision per row of the final clustering: the
  /// strongest co-member similarity (support), its per-metric components
  /// and the applied score offset. Reuses the Cluster() metric bank —
  /// rebuilding one (vocab-squared token-similarity precompute) would
  /// dwarf the ledger's own cost.
  void RecordClusterDecisions(const ClassRowSet& rows,
                              const RowMetricBank& bank,
                              const cluster::ClusteringResult& result) const;

  RowClustererOptions options_;
  ml::ScoreAggregator aggregator_;
  double score_offset_ = 0.0;
};

}  // namespace ltee::rowcluster

#endif  // LTEE_ROWCLUSTER_ROW_CLUSTERER_H_
