#ifndef LTEE_NEWDETECT_NEW_DETECTOR_H_
#define LTEE_NEWDETECT_NEW_DETECTOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "fusion/entity.h"
#include "index/label_index.h"
#include "kb/knowledge_base.h"
#include "ml/aggregator.h"
#include "util/random.h"

namespace ltee::newdetect {

/// The six entity-to-instance similarity metrics of Section 3.4, in the
/// order Table 8 aggregates them.
enum class EntityMetric {
  kLabel = 0,
  kType = 1,
  kBow = 2,
  kAttribute = 3,
  kImplicitAtt = 4,
  kPopularity = 5,
};
inline constexpr int kNumEntityMetrics = 6;
const char* EntityMetricName(EntityMetric metric);

/// Mask enabling the first `k` metrics (Table 8 ablation), or all six.
std::vector<bool> FirstKEntityMetrics(int k);

/// Options of the new detection component.
struct NewDetectorOptions {
  std::vector<bool> enabled_metrics = FirstKEntityMetrics(kNumEntityMetrics);
  ml::AggregationKind aggregation = ml::AggregationKind::kCombined;
  /// Candidate instances retrieved per entity label.
  size_t candidates_per_entity = 10;
};

/// Classification of one created entity.
struct Detection {
  /// True when the entity does not exist in the KB yet.
  bool is_new = true;
  /// Correspondence to the matched instance (valid when !is_new and the
  /// match threshold was cleared; kInvalidInstance otherwise).
  kb::InstanceId instance = kb::kInvalidInstance;
  /// Aggregated similarity of the closest candidate (-1 when the entity
  /// had no candidates at all).
  double best_score = -1.0;
};

/// Ground truth for one entity during training.
struct DetectionLabel {
  bool is_new = true;
  kb::InstanceId instance = kb::kInvalidInstance;
};

/// New detection (Section 3.4): candidate selection from the KB label
/// index, six entity-to-instance metrics aggregated by a learned model,
/// and two learned thresholds deciding new / existing-with-correspondence.
class NewDetector {
 public:
  /// `kb_index` maps doc ids to KB instance ids and must outlive this.
  NewDetector(const kb::KnowledgeBase& kb, const index::LabelIndex& kb_index,
              NewDetectorOptions options = {});

  /// Candidate instances: label-index hits filtered to class-compatible
  /// instances ("of the class of the created entity or share one parent").
  std::vector<kb::InstanceId> Candidates(
      const fusion::CreatedEntity& entity) const;

  /// Metric features of (entity, candidate). `popularity_rank_score` is the
  /// rank-based POPULARITY similarity computed over the candidate set.
  ml::ScoredFeatures Compare(const fusion::CreatedEntity& entity,
                             kb::InstanceId instance,
                             double popularity_rank_score) const;

  /// Trains the aggregation and both thresholds from labeled entities.
  void Train(const std::vector<fusion::CreatedEntity>& entities,
             const std::vector<DetectionLabel>& labels, util::Rng& rng);

  /// Classifies every entity.
  std::vector<Detection> Detect(
      const std::vector<fusion::CreatedEntity>& entities) const;

  std::vector<double> MetricImportances() const {
    return aggregator_.MetricImportances();
  }
  const ml::ScoreAggregator& aggregator() const { return aggregator_; }
  double new_threshold() const { return new_threshold_; }
  double match_threshold() const { return match_threshold_; }

 private:
  struct ScoredCandidate {
    kb::InstanceId instance;
    double score;
    /// Per-metric features; filled only when the provenance ledger is
    /// enabled (Detect() attaches them to its NewDetectDecision).
    ml::ScoredFeatures features;
  };
  /// Candidates with aggregated scores, best first.
  std::vector<ScoredCandidate> ScoreCandidates(
      const fusion::CreatedEntity& entity) const;

  /// Interned token lists of the entity's labels (one per label), computed
  /// once per entity so per-candidate comparisons skip re-tokenizing.
  std::vector<std::vector<uint32_t>> EntityLabelTokens(
      const fusion::CreatedEntity& entity) const;

  /// Compare with the entity's label tokens already computed.
  ml::ScoredFeatures CompareImpl(
      const fusion::CreatedEntity& entity,
      const std::vector<std::vector<uint32_t>>& label_tokens,
      kb::InstanceId instance_id, double popularity_rank_score) const;

  /// Sorted-unique interned bag-of-words of a KB instance (labels,
  /// abstract tokens, fact values), cached across comparisons.
  const std::vector<uint32_t>& InstanceBowIds(kb::InstanceId id) const;

  const kb::KnowledgeBase* kb_;
  const index::LabelIndex* kb_index_;
  NewDetectorOptions options_;
  ml::ScoreAggregator aggregator_;
  /// Lazily-built instance bow cache (behind a shared_ptr so the detector
  /// stays movable; guarded for concurrent Detect calls).
  struct BowCache {
    std::mutex mu;
    std::unordered_map<kb::InstanceId, std::vector<uint32_t>> bows;
  };
  std::shared_ptr<BowCache> bow_cache_ = std::make_shared<BowCache>();
  /// Entities whose best candidate scores below this are new.
  double new_threshold_ = 0.0;
  /// Entities whose best candidate scores at or above this receive a
  /// correspondence to that instance.
  double match_threshold_ = 0.0;
};

}  // namespace ltee::newdetect

#endif  // LTEE_NEWDETECT_NEW_DETECTOR_H_
