#include "newdetect/new_detector.h"

#include <algorithm>
#include <unordered_set>

#include "prov/ledger.h"
#include "types/type_similarity.h"
#include "util/metric_names.h"
#include "util/metrics.h"
#include "util/similarity.h"
#include "util/string_util.h"
#include "util/token_dictionary.h"
#include "util/trace.h"

namespace ltee::newdetect {

namespace {

const types::TypeSimilarityOptions kSimOptions;

std::pair<double, double> AttributeSimilarity(
    const fusion::CreatedEntity& entity, const kb::KnowledgeBase& kb,
    kb::InstanceId instance_id) {
  int pairs = 0;
  double sum = 0.0;
  for (const auto& fact : entity.facts) {
    const types::Value* kb_fact = kb.FactOf(instance_id, fact.property);
    if (kb_fact == nullptr) continue;
    ++pairs;
    sum += types::ValuesEqual(fact.value, *kb_fact, kSimOptions) ? 1.0 : 0.0;
  }
  if (pairs == 0) return {-1.0, 0.0};
  return {sum / pairs, static_cast<double>(pairs)};
}

std::pair<double, double> ImplicitSimilarity(
    const fusion::CreatedEntity& entity, const kb::KnowledgeBase& kb,
    kb::InstanceId instance_id) {
  double weighted_sum = 0.0, weight = 0.0;
  for (const auto& implicit : entity.implicit_attrs) {
    const types::Value* kb_fact = kb.FactOf(instance_id, implicit.property);
    if (kb_fact == nullptr) continue;
    const double equal =
        types::ValuesEqual(implicit.value, *kb_fact, kSimOptions) ? 1.0 : 0.0;
    weighted_sum += implicit.score * equal;
    weight += implicit.score;
  }
  if (weight == 0.0) return {-1.0, 0.0};
  return {weighted_sum / weight, weight};
}

}  // namespace

const char* EntityMetricName(EntityMetric metric) {
  switch (metric) {
    case EntityMetric::kLabel: return "LABEL";
    case EntityMetric::kType: return "TYPE";
    case EntityMetric::kBow: return "BOW";
    case EntityMetric::kAttribute: return "ATTRIBUTE";
    case EntityMetric::kImplicitAtt: return "IMPLICIT_ATT";
    case EntityMetric::kPopularity: return "POPULARITY";
  }
  return "?";
}

std::vector<bool> FirstKEntityMetrics(int k) {
  std::vector<bool> mask(kNumEntityMetrics, false);
  for (int i = 0; i < std::min(k, kNumEntityMetrics); ++i) mask[i] = true;
  return mask;
}

NewDetector::NewDetector(const kb::KnowledgeBase& kb,
                         const index::LabelIndex& kb_index,
                         NewDetectorOptions options)
    : kb_(&kb), kb_index_(&kb_index), options_(std::move(options)) {
  options_.enabled_metrics.resize(kNumEntityMetrics, false);
}

std::vector<kb::InstanceId> NewDetector::Candidates(
    const fusion::CreatedEntity& entity) const {
  std::vector<kb::InstanceId> out;
  std::unordered_set<kb::InstanceId> seen;
  for (const auto& label : entity.labels) {
    for (const auto& hit :
         kb_index_->Search(label, options_.candidates_per_entity)) {
      const kb::InstanceId id = static_cast<kb::InstanceId>(hit.doc);
      if (!seen.insert(id).second) continue;
      const kb::Instance& instance = kb_->instance(id);
      if (entity.cls != kb::kInvalidClass &&
          !kb_->ClassesCompatible(entity.cls, instance.cls)) {
        continue;
      }
      out.push_back(id);
    }
  }
  return out;
}

std::vector<std::vector<uint32_t>> NewDetector::EntityLabelTokens(
    const fusion::CreatedEntity& entity) const {
  util::TokenDictionary* dict = kb_index_->dict_ptr().get();
  std::vector<std::vector<uint32_t>> out;
  out.reserve(entity.labels.size());
  for (const auto& label : entity.labels) {
    out.push_back(dict->InternTokens(label));
  }
  return out;
}

const std::vector<uint32_t>& NewDetector::InstanceBowIds(
    kb::InstanceId id) const {
  std::lock_guard<std::mutex> lock(bow_cache_->mu);
  auto it = bow_cache_->bows.find(id);
  if (it != bow_cache_->bows.end()) return it->second;

  util::TokenDictionary* dict = kb_index_->dict_ptr().get();
  const kb::Instance& instance = kb_->instance(id);
  std::vector<uint32_t> bow;
  for (const auto& label : instance.labels) {
    for (uint32_t tok : dict->InternTokens(label)) bow.push_back(tok);
  }
  for (const auto& tok : instance.abstract_tokens) {
    bow.push_back(dict->Intern(tok));
  }
  for (const auto& fact : instance.facts) {
    for (uint32_t tok : dict->InternTokens(fact.value.ToString())) {
      bow.push_back(tok);
    }
  }
  auto [inserted, unused] =
      bow_cache_->bows.emplace(id, util::SortedUnique(std::move(bow)));
  return inserted->second;
}

ml::ScoredFeatures NewDetector::Compare(const fusion::CreatedEntity& entity,
                                        kb::InstanceId instance_id,
                                        double popularity_rank_score) const {
  return CompareImpl(entity, EntityLabelTokens(entity), instance_id,
                     popularity_rank_score);
}

ml::ScoredFeatures NewDetector::CompareImpl(
    const fusion::CreatedEntity& entity,
    const std::vector<std::vector<uint32_t>>& label_tokens,
    kb::InstanceId instance_id, double popularity_rank_score) const {
  const kb::Instance& instance = kb_->instance(instance_id);
  const util::TokenDictionary& dict = kb_index_->dict();
  ml::ScoredFeatures out;
  auto push = [&out](double sim, double conf) {
    out.sims.push_back(sim);
    out.confs.push_back(conf);
  };
  const auto& enabled = options_.enabled_metrics;
  if (enabled[static_cast<int>(EntityMetric::kLabel)]) {
    // Max Monge-Elkan over (entity label, indexed instance label) pairs;
    // labels normalizing to nothing score zero against the non-empty
    // entity labels, exactly as they would if compared directly.
    double best = 0.0;
    const auto instance_labels =
        kb_index_->LabelTokensOf(static_cast<uint32_t>(instance_id));
    for (const auto& a : label_tokens) {
      for (const auto& b : instance_labels) {
        best = std::max(best, util::MongeElkanLevenshtein(a, b, dict));
      }
    }
    push(best, 0.0);
  }
  if (enabled[static_cast<int>(EntityMetric::kType)]) {
    push(entity.cls == kb::kInvalidClass
             ? -1.0
             : kb_->ClassOverlap(entity.cls, instance.cls),
         0.0);
  }
  if (enabled[static_cast<int>(EntityMetric::kBow)]) {
    push(util::CosineBinary(entity.bow, InstanceBowIds(instance_id)), 0.0);
  }
  if (enabled[static_cast<int>(EntityMetric::kAttribute)]) {
    auto [sim, conf] = AttributeSimilarity(entity, *kb_, instance_id);
    push(sim, conf);
  }
  if (enabled[static_cast<int>(EntityMetric::kImplicitAtt)]) {
    auto [sim, conf] = ImplicitSimilarity(entity, *kb_, instance_id);
    push(sim, conf);
  }
  if (enabled[static_cast<int>(EntityMetric::kPopularity)]) {
    push(popularity_rank_score, 0.0);
  }
  return out;
}

std::vector<NewDetector::ScoredCandidate> NewDetector::ScoreCandidates(
    const fusion::CreatedEntity& entity) const {
  auto candidates = Candidates(entity);
  const auto label_tokens = EntityLabelTokens(entity);
  // POPULARITY: rank candidates by incoming-page-link popularity; a single
  // candidate scores 1.0, the k-th most popular scores 1/k.
  std::vector<kb::InstanceId> by_popularity = candidates;
  std::sort(by_popularity.begin(), by_popularity.end(),
            [&](kb::InstanceId a, kb::InstanceId b) {
              return kb_->instance(a).popularity > kb_->instance(b).popularity;
            });
  std::vector<ScoredCandidate> out;
  out.reserve(candidates.size());
  for (kb::InstanceId id : candidates) {
    const auto rank_it =
        std::find(by_popularity.begin(), by_popularity.end(), id);
    const double rank = static_cast<double>(rank_it - by_popularity.begin()) + 1.0;
    const double pop_score = candidates.size() == 1 ? 1.0 : 1.0 / rank;
    ScoredCandidate scored;
    scored.instance = id;
    ml::ScoredFeatures features =
        CompareImpl(entity, label_tokens, id, pop_score);
    scored.score = aggregator_.Score(features);
    if (prov::IsEnabled()) scored.features = std::move(features);
    out.push_back(std::move(scored));
  }
  std::sort(out.begin(), out.end(),
            [](const ScoredCandidate& a, const ScoredCandidate& b) {
              return a.score > b.score;
            });
  return out;
}

void NewDetector::Train(const std::vector<fusion::CreatedEntity>& entities,
                        const std::vector<DetectionLabel>& labels,
                        util::Rng& rng) {
  // ---- 1. Pairwise aggregation training. --------------------------------
  std::vector<ml::Example> examples;
  for (size_t e = 0; e < entities.size(); ++e) {
    auto candidates = Candidates(entities[e]);
    const auto label_tokens = EntityLabelTokens(entities[e]);
    std::vector<kb::InstanceId> by_popularity = candidates;
    std::sort(by_popularity.begin(), by_popularity.end(),
              [&](kb::InstanceId a, kb::InstanceId b) {
                return kb_->instance(a).popularity >
                       kb_->instance(b).popularity;
              });
    for (kb::InstanceId id : candidates) {
      const auto rank_it =
          std::find(by_popularity.begin(), by_popularity.end(), id);
      const double rank =
          static_cast<double>(rank_it - by_popularity.begin()) + 1.0;
      const double pop_score = candidates.size() == 1 ? 1.0 : 1.0 / rank;
      ml::Example ex;
      ex.features = CompareImpl(entities[e], label_tokens, id, pop_score);
      ex.target = (!labels[e].is_new && labels[e].instance == id) ? 1.0 : -1.0;
      examples.push_back(std::move(ex));
    }
  }
  aggregator_.Train(std::move(examples), options_.aggregation, rng);

  // ---- 2. Threshold sweeps. ----------------------------------------------
  struct EntityScore {
    double best;
    kb::InstanceId best_instance;
    bool is_new;
    kb::InstanceId gold_instance;
  };
  std::vector<EntityScore> scored;
  for (size_t e = 0; e < entities.size(); ++e) {
    auto candidates = ScoreCandidates(entities[e]);
    EntityScore s;
    s.best = candidates.empty() ? -1.0 : candidates.front().score;
    s.best_instance =
        candidates.empty() ? kb::kInvalidInstance : candidates.front().instance;
    s.is_new = labels[e].is_new;
    s.gold_instance = labels[e].instance;
    scored.push_back(s);
  }

  // new_threshold: maximize new-vs-existing classification accuracy.
  std::vector<double> trials = {-0.99};
  for (const auto& s : scored) trials.push_back(s.best + 1e-9);
  double best_acc = -1.0;
  for (double t : trials) {
    int correct = 0;
    for (const auto& s : scored) {
      const bool predicted_new = s.best < t;
      if (predicted_new == s.is_new) ++correct;
    }
    const double acc = static_cast<double>(correct) /
                       static_cast<double>(std::max<size_t>(1, scored.size()));
    if (acc > best_acc) {
      best_acc = acc;
      new_threshold_ = t;
    }
  }

  // match_threshold >= new_threshold: maximize existing-match F1.
  double best_f1 = -1.0;
  match_threshold_ = new_threshold_;
  for (double t : trials) {
    if (t < new_threshold_) continue;
    int tp = 0, fp = 0, fn = 0;
    for (const auto& s : scored) {
      const bool matched = s.best >= t;
      if (matched) {
        if (!s.is_new && s.best_instance == s.gold_instance) ++tp;
        else ++fp;
      } else if (!s.is_new) {
        ++fn;
      }
    }
    const double p = tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
    const double r = tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
    const double f1 = p + r == 0.0 ? 0.0 : 2 * p * r / (p + r);
    if (f1 > best_f1) {
      best_f1 = f1;
      match_threshold_ = t;
    }
  }
}

std::vector<Detection> NewDetector::Detect(
    const std::vector<fusion::CreatedEntity>& entities) const {
  util::trace::ScopedSpan span("newdetect.detect");
  span.AddArg("entities", entities.size());
  size_t new_entities = 0, matched = 0;
  // Feature names of the enabled metrics, in emission order (provenance).
  std::vector<std::string> feature_names;
  if (prov::IsEnabled()) {
    for (int m = 0; m < kNumEntityMetrics; ++m) {
      if (options_.enabled_metrics[m]) {
        feature_names.push_back(EntityMetricName(static_cast<EntityMetric>(m)));
      }
    }
  }
  // NEW verdicts per class, feeding the ltee.prov.new_ratio_* gauges.
  std::unordered_map<kb::ClassId, std::pair<size_t, size_t>> class_counts;
  std::vector<Detection> out;
  out.reserve(entities.size());
  for (const auto& entity : entities) {
    auto candidates = ScoreCandidates(entity);
    Detection detection;
    if (candidates.empty()) {
      detection.is_new = true;
      detection.best_score = -1.0;
    } else {
      detection.best_score = candidates.front().score;
      if (candidates.front().score < new_threshold_) {
        detection.is_new = true;
      } else {
        detection.is_new = false;
        if (candidates.front().score >= match_threshold_) {
          detection.instance = candidates.front().instance;
        }
      }
    }
    if (detection.is_new) {
      ++new_entities;
    } else if (detection.instance != kb::kInvalidInstance) {
      ++matched;
    }
    if (entity.cls != kb::kInvalidClass) {
      auto& [news, total] = class_counts[entity.cls];
      if (detection.is_new) ++news;
      ++total;
    }
    if (prov::IsEnabled()) {
      prov::NewDetectDecision decision;
      decision.cls = entity.cls;
      decision.cluster_id = entity.cluster_id;
      if (!entity.labels.empty()) decision.label = entity.labels.front();
      decision.is_new = detection.is_new;
      decision.best_score = detection.best_score;
      decision.new_threshold = new_threshold_;
      decision.match_threshold = match_threshold_;
      if (detection.instance != kb::kInvalidInstance) {
        const auto& labels = kb_->instance(detection.instance).labels;
        if (!labels.empty()) decision.matched_instance = labels.front();
      }
      const size_t top = std::min<size_t>(3, candidates.size());
      for (size_t k = 0; k < top; ++k) {
        const auto& labels = kb_->instance(candidates[k].instance).labels;
        decision.candidates.emplace_back(labels.empty() ? "" : labels.front(),
                                         candidates[k].score);
      }
      if (!candidates.empty()) {
        const auto& sims = candidates.front().features.sims;
        for (size_t k = 0; k < sims.size() && k < feature_names.size(); ++k) {
          decision.features.emplace_back(feature_names[k], sims[k]);
        }
      }
      prov::Record(std::move(decision));
    }
    out.push_back(detection);
  }
  // Per-class NEW/EXISTING ratio gauges (always on; one writer per class
  // because the pipeline runs each class's Detect on a single thread).
  for (const auto& [cls, counts] : class_counts) {
    const auto& [news, total] = counts;
    if (total == 0) continue;
    util::Metrics()
        .GetGauge("ltee.prov.new_ratio_" +
                  util::SanitizeMetricSegment(kb_->cls(cls).name))
        .Set(static_cast<double>(news) / static_cast<double>(total));
  }
  span.AddArg("new", new_entities);
  span.AddArg("matched", matched);
  util::Metrics().GetCounter("ltee.newdetect.entities_scored")
      .Increment(entities.size());
  util::Metrics().GetCounter("ltee.newdetect.new_entities")
      .Increment(new_entities);
  util::Metrics().GetCounter("ltee.newdetect.matched_entities")
      .Increment(matched);
  return out;
}

}  // namespace ltee::newdetect
