#include "pipeline/experiment.h"

#include <algorithm>
#include <set>

#include "ml/cross_validation.h"
#include "pipeline/gold_artifacts.h"
#include "util/logging.h"
#include "util/stats.h"

namespace ltee::pipeline {

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

struct GoldExperiment::ClassFoldState {
  kb::ClassId cls = kb::kInvalidClass;
  std::vector<int> learning_clusters;
  std::vector<int> test_clusters;
  eval::GoldStandard learning_gold;
  eval::GoldStandard test_gold;
  /// Row set of the class built from the gold schema mapping.
  rowcluster::ClassRowSet gold_rows;
  /// Gold cluster index per row of gold_rows (-1 unannotated).
  std::vector<int> gold_cluster_of_row;
  /// Same, but only for learning-cluster rows (-1 elsewhere).
  std::vector<int> learning_assignment;
  std::set<int> test_cluster_set;
  std::set<int> learning_cluster_set;
};

struct GoldExperiment::FoldState {
  bool built = false;
  std::unique_ptr<LteePipeline> pipeline;
  matching::SchemaMapping gold_mapping;
  std::vector<ClassFoldState> classes;
  std::vector<webtable::TableId> learning_tables;
  std::vector<webtable::TableId> test_tables;
  std::vector<matching::AttributeAnnotation> annotations;
  std::unique_ptr<PipelineRunResult> run;
  util::Rng rng{0};
};

GoldExperiment::GoldExperiment(const kb::KnowledgeBase& kb,
                               const webtable::TableCorpus& gs_corpus,
                               std::vector<eval::GoldStandard> gold,
                               PipelineOptions options, int num_folds,
                               uint64_t seed)
    : kb_(&kb),
      gs_corpus_(&gs_corpus),
      gold_(std::move(gold)),
      options_(std::move(options)),
      num_folds_(num_folds),
      seed_(seed) {
  // The experiment needs at least three iterations for Table 6.
  options_.iterations = std::max(options_.iterations, 3);

  util::Rng rng(seed_);
  for (auto& gs : gold_) {
    gs.BuildLookups();
    std::vector<int64_t> groups;
    std::vector<int> strata;
    for (const auto& cluster : gs.clusters) {
      groups.push_back(cluster.homonym_group);
      strata.push_back(cluster.is_new ? 1 : 0);
    }
    fold_of_cluster_.push_back(ml::AssignFolds(
        gs.clusters.size(), groups, strata, num_folds_, rng));
  }
  fold_states_.resize(num_folds_);
}

GoldExperiment::~GoldExperiment() = default;

std::vector<fusion::CreatedEntity> GoldExperiment::GoldClusterEntities(
    const rowcluster::ClassRowSet& rows, const eval::GoldStandard& gold,
    const std::vector<int>& cluster_indices,
    const matching::SchemaMapping& mapping,
    const fusion::EntityCreator& creator,
    const webtable::PreparedCorpus& prepared) const {
  std::map<int, int> dense;  // gold cluster -> dense id
  for (size_t k = 0; k < cluster_indices.size(); ++k) {
    dense[cluster_indices[k]] = static_cast<int>(k);
  }
  std::vector<int> assignment(rows.rows.size(), -1);
  for (size_t i = 0; i < rows.rows.size(); ++i) {
    const int g = gold.ClusterOfRow(rows.rows[i].ref);
    auto it = dense.find(g);
    if (it != dense.end()) assignment[i] = it->second;
  }
  auto entities = creator.Create(rows, assignment, mapping, prepared);
  entities.resize(cluster_indices.size());
  for (size_t k = 0; k < entities.size(); ++k) {
    entities[k].cluster_id = static_cast<int>(k);
    entities[k].cls = rows.cls;
  }
  return entities;
}

GoldExperiment::FoldState& GoldExperiment::Fold(int fold) {
  if (fold_states_[fold] == nullptr) {
    fold_states_[fold] = std::make_unique<FoldState>();
  }
  FoldState& state = *fold_states_[fold];
  if (state.built) return state;
  state.built = true;
  state.rng = util::Rng(seed_ * 7919 + fold + 1);

  state.pipeline = std::make_unique<LteePipeline>(*kb_, options_);
  LteePipeline& pipeline = *state.pipeline;
  const webtable::PreparedCorpus& prepared = pipeline.Prepared(*gs_corpus_);

  // ---- Gold mapping over the GS corpus (all classes merged). -----------
  state.gold_mapping.tables.resize(gs_corpus_->size());
  for (const auto& gs : gold_) {
    auto class_mapping = GoldSchemaMapping(*gs_corpus_, gs, *kb_);
    MergeGoldMappings(class_mapping, &state.gold_mapping);
  }

  // ---- Per-class state and component training. --------------------------
  for (size_t ci = 0; ci < gold_.size(); ++ci) {
    const eval::GoldStandard& gs = gold_[ci];
    ClassFoldState cf;
    cf.cls = gs.cls;
    for (size_t g = 0; g < gs.clusters.size(); ++g) {
      if (fold_of_cluster_[ci][g] == fold) {
        cf.test_clusters.push_back(static_cast<int>(g));
        cf.test_cluster_set.insert(static_cast<int>(g));
      } else {
        cf.learning_clusters.push_back(static_cast<int>(g));
        cf.learning_cluster_set.insert(static_cast<int>(g));
      }
    }
    cf.learning_gold = eval::FilterClusters(gs, cf.learning_clusters);
    cf.test_gold = eval::FilterClusters(gs, cf.test_clusters);

    cf.gold_rows = rowcluster::BuildClassRowSet(
        prepared, state.gold_mapping, gs.cls, *kb_, pipeline.kb_index(),
        options_.row_features);
    cf.gold_cluster_of_row.resize(cf.gold_rows.rows.size(), -1);
    cf.learning_assignment.resize(cf.gold_rows.rows.size(), -1);
    for (size_t i = 0; i < cf.gold_rows.rows.size(); ++i) {
      const int g = gs.ClusterOfRow(cf.gold_rows.rows[i].ref);
      cf.gold_cluster_of_row[i] = g;
      if (g >= 0 && cf.learning_cluster_set.count(g)) {
        cf.learning_assignment[i] = g;
      }
    }

    // Train the row clusterer on learning rows.
    pipeline.clusterer_for(gs.cls).Train(cf.gold_rows,
                                         cf.learning_assignment, state.rng);

    // Train the new detector on gold-cluster entities of the learning set.
    auto creator = pipeline.MakeEntityCreator();
    auto entities = GoldClusterEntities(cf.gold_rows, gs,
                                        cf.learning_clusters,
                                        state.gold_mapping, creator, prepared);
    std::vector<fusion::CreatedEntity> train_entities;
    std::vector<newdetect::DetectionLabel> train_labels;
    for (size_t k = 0; k < entities.size(); ++k) {
      if (entities[k].rows.empty()) continue;
      const eval::GsCluster& cluster = gs.clusters[cf.learning_clusters[k]];
      train_entities.push_back(std::move(entities[k]));
      train_labels.push_back({cluster.is_new, cluster.kb_instance});
    }
    pipeline.detector_for(gs.cls).Train(train_entities, train_labels,
                                        state.rng);

    state.classes.push_back(std::move(cf));
  }

  // ---- Table folds and schema annotations. -------------------------------
  for (size_t ci = 0; ci < gold_.size(); ++ci) {
    const eval::GoldStandard& gs = gold_[ci];
    for (webtable::TableId tid : gs.tables) {
      // Majority fold over the table's annotated rows.
      std::vector<int> fold_count(num_folds_, 0);
      const webtable::WebTable& table = gs_corpus_->table(tid);
      for (size_t r = 0; r < table.num_rows(); ++r) {
        const int g = gs.ClusterOfRow({tid, static_cast<int32_t>(r)});
        if (g >= 0) fold_count[fold_of_cluster_[ci][g]] += 1;
      }
      const int majority = static_cast<int>(
          std::max_element(fold_count.begin(), fold_count.end()) -
          fold_count.begin());
      (majority == fold ? state.test_tables : state.learning_tables)
          .push_back(tid);
    }
    for (const auto& attr : gs.attributes) {
      state.annotations.push_back({attr.table, attr.column, attr.property});
    }
  }

  // ---- Schema matcher learning. -------------------------------------------
  pipeline.schema_matcher_first().Learn(prepared, state.learning_tables,
                                        state.annotations, {}, state.rng);
  // The refined matcher is learned against *system* feedback: a real
  // first-iteration run (first matcher + trained clusterers/detectors), so
  // its weights see the same noise they will face at inference.
  auto mapping1 = pipeline.schema_matcher_first().Match(prepared);
  std::vector<ClassRunResult> first_pass;
  for (const auto& gs : gold_) {
    first_pass.push_back(pipeline.RunClass(*gs_corpus_, mapping1, gs.cls));
  }
  matching::RowInstanceMap system_instances;
  matching::RowClusterMap system_clusters;
  LteePipeline::CollectFeedback(first_pass, &system_instances,
                                &system_clusters);
  matching::MatcherFeedback system_feedback;
  system_feedback.row_instances = &system_instances;
  system_feedback.row_clusters = &system_clusters;
  system_feedback.preliminary = &mapping1;
  pipeline.schema_matcher_refined().Learn(prepared, state.learning_tables,
                                          state.annotations, system_feedback,
                                          state.rng);

  LTEE_LOG(kDebug) << "fold " << fold << " trained";
  return state;
}

const PipelineRunResult& GoldExperiment::EndToEndRun(int fold) {
  FoldState& state = Fold(fold);
  if (state.run == nullptr) {
    std::vector<kb::ClassId> classes;
    for (const auto& gs : gold_) classes.push_back(gs.cls);
    state.run = std::make_unique<PipelineRunResult>(
        state.pipeline->Run(*gs_corpus_, classes));
  }
  return *state.run;
}

// ---------------------------------------------------------------------------
// Table 6: schema matching by iteration
// ---------------------------------------------------------------------------

std::vector<GoldExperiment::PrfMetrics>
GoldExperiment::SchemaMatchingByIteration(int max_iterations) {
  std::vector<PrfMetrics> totals(max_iterations);
  for (int fold = 0; fold < num_folds_; ++fold) {
    FoldState& state = Fold(fold);
    const PipelineRunResult& run = EndToEndRun(fold);

    std::map<std::pair<webtable::TableId, int>, kb::PropertyId> annotated;
    std::set<webtable::TableId> test_set(state.test_tables.begin(),
                                         state.test_tables.end());
    for (const auto& a : state.annotations) {
      if (test_set.count(a.table)) annotated[{a.table, a.column}] = a.property;
    }

    for (int it = 0; it < max_iterations; ++it) {
      const matching::SchemaMapping& mapping =
          run.mappings[std::min<size_t>(it, run.mappings.size() - 1)];
      int tp = 0, fp = 0, fn = 0;
      for (webtable::TableId tid : state.test_tables) {
        const matching::TableMapping& tm = mapping.of(tid);
        for (size_t c = 0; c < tm.columns.size(); ++c) {
          const kb::PropertyId predicted = tm.columns[c].property;
          if (predicted == kb::kInvalidProperty) continue;
          auto it2 = annotated.find({tid, static_cast<int>(c)});
          if (it2 != annotated.end() && it2->second == predicted) {
            ++tp;
          } else {
            ++fp;
          }
        }
      }
      for (const auto& [key, property] : annotated) {
        const matching::TableMapping& tm = mapping.of(key.first);
        if (key.second >= static_cast<int>(tm.columns.size()) ||
            tm.columns[key.second].property != property) {
          ++fn;
        }
      }
      const double p =
          tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
      const double r =
          tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
      totals[it].precision += p;
      totals[it].recall += r;
      totals[it].f1 += util::F1(p, r);
    }
  }
  for (auto& m : totals) {
    m.precision /= num_folds_;
    m.recall /= num_folds_;
    m.f1 /= num_folds_;
  }
  return totals;
}

std::vector<double> GoldExperiment::AverageSchemaWeights() {
  std::vector<double> out(matching::kNumMatchers, 0.0);
  for (int fold = 0; fold < num_folds_; ++fold) {
    FoldState& state = Fold(fold);
    auto weights = state.pipeline->schema_matcher_refined().AverageWeights();
    for (int i = 0; i < matching::kNumMatchers; ++i) out[i] += weights[i];
  }
  for (auto& w : out) w /= num_folds_;
  return out;
}

// ---------------------------------------------------------------------------
// Table 7: row clustering ablation
// ---------------------------------------------------------------------------

GoldExperiment::ClusteringMetrics GoldExperiment::RowClustering(
    const std::vector<bool>& metrics, ml::AggregationKind aggregation,
    bool blocking) {
  ClusteringMetrics out;
  int enabled = 0;
  for (bool b : metrics) enabled += b ? 1 : 0;
  out.importances.assign(enabled, 0.0);
  int runs = 0;

  for (int fold = 0; fold < num_folds_; ++fold) {
    FoldState& state = Fold(fold);
    for (auto& cf : state.classes) {
      rowcluster::RowClustererOptions opts = options_.clustering;
      opts.enabled_metrics = metrics;
      opts.aggregation = aggregation;
      opts.enable_blocking = blocking;
      rowcluster::RowClusterer clusterer(opts);
      clusterer.Train(cf.gold_rows, cf.learning_assignment, state.rng);

      std::vector<bool> keep(cf.gold_rows.rows.size(), false);
      for (size_t i = 0; i < keep.size(); ++i) {
        const int g = cf.gold_cluster_of_row[i];
        keep[i] = g >= 0 && cf.test_cluster_set.count(g) > 0;
      }
      auto test_rows = rowcluster::FilterRows(cf.gold_rows, keep);
      auto result = clusterer.Cluster(test_rows);

      std::vector<webtable::RowRef> refs;
      refs.reserve(test_rows.rows.size());
      for (const auto& row : test_rows.rows) refs.push_back(row.ref);
      auto grouped = eval::GroupRows(refs, result.cluster_of);
      auto metrics_result = eval::EvaluateClustering(grouped, cf.test_gold);

      out.penalized_precision += metrics_result.penalized_precision;
      out.average_recall += metrics_result.average_recall;
      out.f1 += metrics_result.f1;
      auto importances = clusterer.MetricImportances();
      for (size_t k = 0; k < importances.size() && k < out.importances.size();
           ++k) {
        out.importances[k] += importances[k];
      }
      ++runs;
    }
  }
  if (runs > 0) {
    out.penalized_precision /= runs;
    out.average_recall /= runs;
    out.f1 /= runs;
    for (auto& imp : out.importances) imp /= runs;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Table 8: new detection ablation
// ---------------------------------------------------------------------------

GoldExperiment::DetectionMetrics GoldExperiment::NewDetection(
    const std::vector<bool>& metrics) {
  DetectionMetrics out;
  int enabled = 0;
  for (bool b : metrics) enabled += b ? 1 : 0;
  out.importances.assign(enabled, 0.0);
  int runs = 0;

  for (int fold = 0; fold < num_folds_; ++fold) {
    FoldState& state = Fold(fold);
    for (size_t ci = 0; ci < state.classes.size(); ++ci) {
      ClassFoldState& cf = state.classes[ci];
      const eval::GoldStandard& gs = gold_[ci];

      newdetect::NewDetectorOptions opts = options_.detection;
      opts.enabled_metrics = metrics;
      newdetect::NewDetector detector(*kb_, state.pipeline->kb_index(), opts);

      auto creator = state.pipeline->MakeEntityCreator();
      const webtable::PreparedCorpus& prepared =
          state.pipeline->Prepared(*gs_corpus_);
      auto train_entities =
          GoldClusterEntities(cf.gold_rows, gs, cf.learning_clusters,
                              state.gold_mapping, creator, prepared);
      std::vector<fusion::CreatedEntity> filtered_entities;
      std::vector<newdetect::DetectionLabel> labels;
      for (size_t k = 0; k < train_entities.size(); ++k) {
        if (train_entities[k].rows.empty()) continue;
        const auto& cluster = gs.clusters[cf.learning_clusters[k]];
        filtered_entities.push_back(std::move(train_entities[k]));
        labels.push_back({cluster.is_new, cluster.kb_instance});
      }
      detector.Train(filtered_entities, labels, state.rng);

      auto test_entities =
          GoldClusterEntities(cf.gold_rows, gs, cf.test_clusters,
                              state.gold_mapping, creator, prepared);
      std::vector<fusion::CreatedEntity> eval_entities;
      std::vector<const eval::GsCluster*> eval_clusters;
      for (size_t k = 0; k < test_entities.size(); ++k) {
        if (test_entities[k].rows.empty()) continue;
        eval_clusters.push_back(&gs.clusters[cf.test_clusters[k]]);
        eval_entities.push_back(std::move(test_entities[k]));
      }
      auto detections = detector.Detect(eval_entities);
      auto result = eval::EvaluateNewDetection(detections, eval_clusters);

      out.accuracy += result.accuracy;
      out.f1_existing += result.f1_existing;
      out.f1_new += result.f1_new;
      auto importances = detector.MetricImportances();
      for (size_t k = 0; k < importances.size() && k < out.importances.size();
           ++k) {
        out.importances[k] += importances[k];
      }
      ++runs;
    }
  }
  if (runs > 0) {
    out.accuracy /= runs;
    out.f1_existing /= runs;
    out.f1_new /= runs;
    for (auto& imp : out.importances) imp /= runs;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tables 9 & 10 and Section 6
// ---------------------------------------------------------------------------

namespace {

/// Detections implied by the gold standard, parallel to entities created
/// 1:1 from the given clusters.
std::vector<newdetect::Detection> GoldDetections(
    const eval::GoldStandard& gs, const std::vector<int>& clusters) {
  std::vector<newdetect::Detection> out;
  for (int g : clusters) {
    newdetect::Detection d;
    d.is_new = gs.clusters[g].is_new;
    d.instance = gs.clusters[g].kb_instance;
    d.best_score = d.is_new ? -1.0 : 1.0;
    out.push_back(d);
  }
  return out;
}

}  // namespace

eval::InstancesFoundResult GoldExperiment::NewInstancesFound(
    int class_index, bool gold_clustering) {
  eval::InstancesFoundResult total;
  for (int fold = 0; fold < num_folds_; ++fold) {
    FoldState& state = Fold(fold);
    const PipelineRunResult& run = EndToEndRun(fold);
    ClassFoldState& cf = state.classes[class_index];
    const eval::GoldStandard& gs = gold_[class_index];
    const matching::SchemaMapping& mapping = run.mappings.back();
    const ClassRunResult& class_run = run.classes[class_index];
    auto creator = state.pipeline->MakeEntityCreator();

    std::vector<fusion::CreatedEntity> entities;
    std::vector<newdetect::Detection> detections;
    const webtable::PreparedCorpus& prepared =
        state.pipeline->Prepared(*gs_corpus_);
    if (gold_clustering) {
      auto gold_entities = GoldClusterEntities(
          class_run.rows, gs, cf.test_clusters, mapping, creator, prepared);
      for (auto& entity : gold_entities) {
        if (!entity.rows.empty()) entities.push_back(std::move(entity));
      }
      detections = state.pipeline->detector_for(gs.cls).Detect(entities);
    } else {
      // System clustering over test rows (learning rows excluded).
      std::vector<bool> keep(class_run.rows.rows.size(), false);
      for (size_t i = 0; i < keep.size(); ++i) {
        const int g = gs.ClusterOfRow(class_run.rows.rows[i].ref);
        keep[i] = g < 0 || cf.test_cluster_set.count(g) > 0;
      }
      auto test_rows = rowcluster::FilterRows(class_run.rows, keep);
      auto clustering =
          state.pipeline->clusterer_for(gs.cls).Cluster(test_rows);
      entities =
          creator.Create(test_rows, clustering.cluster_of, mapping, prepared);
      detections = state.pipeline->detector_for(gs.cls).Detect(entities);
    }
    auto result = eval::EvaluateNewInstancesFound(entities, detections,
                                                  cf.test_gold);
    total.precision += result.precision;
    total.recall += result.recall;
    total.f1 += result.f1;
  }
  total.precision /= num_folds_;
  total.recall /= num_folds_;
  total.f1 /= num_folds_;
  return total;
}

eval::FactsFoundResult GoldExperiment::FactsFound(
    int class_index, bool gold_clustering, bool gold_detection,
    fusion::ScoringApproach scoring) {
  eval::FactsFoundResult total;
  for (int fold = 0; fold < num_folds_; ++fold) {
    FoldState& state = Fold(fold);
    const PipelineRunResult& run = EndToEndRun(fold);
    ClassFoldState& cf = state.classes[class_index];
    const eval::GoldStandard& gs = gold_[class_index];
    const matching::SchemaMapping& mapping = run.mappings.back();
    const ClassRunResult& class_run = run.classes[class_index];
    auto creator = state.pipeline->MakeEntityCreator(scoring);

    std::vector<fusion::CreatedEntity> entities;
    std::vector<newdetect::Detection> detections;
    const webtable::PreparedCorpus& prepared =
        state.pipeline->Prepared(*gs_corpus_);
    if (gold_clustering) {
      auto gold_entities = GoldClusterEntities(
          class_run.rows, gs, cf.test_clusters, mapping, creator, prepared);
      std::vector<int> kept_clusters;
      for (size_t k = 0; k < gold_entities.size(); ++k) {
        if (gold_entities[k].rows.empty()) continue;
        kept_clusters.push_back(cf.test_clusters[k]);
        entities.push_back(std::move(gold_entities[k]));
      }
      if (gold_detection) {
        detections = GoldDetections(gs, kept_clusters);
      } else {
        detections = state.pipeline->detector_for(gs.cls).Detect(entities);
      }
    } else {
      std::vector<bool> keep(class_run.rows.rows.size(), false);
      for (size_t i = 0; i < keep.size(); ++i) {
        const int g = gs.ClusterOfRow(class_run.rows.rows[i].ref);
        keep[i] = g < 0 || cf.test_cluster_set.count(g) > 0;
      }
      auto test_rows = rowcluster::FilterRows(class_run.rows, keep);
      auto clustering =
          state.pipeline->clusterer_for(gs.cls).Cluster(test_rows);
      entities = creator.Create(test_rows, clustering.cluster_of, mapping,
                                prepared);
      detections = state.pipeline->detector_for(gs.cls).Detect(entities);
    }
    auto result =
        eval::EvaluateFactsFound(entities, detections, cf.test_gold);
    total.precision += result.precision;
    total.recall += result.recall;
    total.f1 += result.f1;
    total.returned_facts += result.returned_facts;
    total.correct_facts += result.correct_facts;
  }
  total.precision /= num_folds_;
  total.recall /= num_folds_;
  total.f1 /= num_folds_;
  return total;
}

eval::RankedEvalResult GoldExperiment::RankedNewEntities(size_t cutoff) {
  // Pool new-classified entities of the full system runs over classes and
  // folds; rank by distance to the closest existing instance (entities
  // farthest from any KB instance first).
  std::vector<std::pair<double, bool>> pool;  // (best_score, correct)
  for (int fold = 0; fold < num_folds_; ++fold) {
    FoldState& state = Fold(fold);
    const PipelineRunResult& run = EndToEndRun(fold);
    for (size_t ci = 0; ci < state.classes.size(); ++ci) {
      ClassFoldState& cf = state.classes[ci];
      const eval::GoldStandard& gs = gold_[ci];
      const ClassRunResult& class_run = run.classes[ci];
      auto creator = state.pipeline->MakeEntityCreator();

      std::vector<bool> keep(class_run.rows.rows.size(), false);
      for (size_t i = 0; i < keep.size(); ++i) {
        const int g = gs.ClusterOfRow(class_run.rows.rows[i].ref);
        keep[i] = g < 0 || cf.test_cluster_set.count(g) > 0;
      }
      auto test_rows = rowcluster::FilterRows(class_run.rows, keep);
      auto clustering =
          state.pipeline->clusterer_for(gs.cls).Cluster(test_rows);
      auto entities =
          creator.Create(test_rows, clustering.cluster_of, run.mappings.back(),
                         state.pipeline->Prepared(*gs_corpus_));
      auto detections = state.pipeline->detector_for(gs.cls).Detect(entities);
      const auto mapping_to_gold =
          eval::MapEntitiesToGold(entities, cf.test_gold);
      for (size_t e = 0; e < entities.size(); ++e) {
        if (!detections[e].is_new) continue;
        const int g = mapping_to_gold[e];
        const bool correct = g >= 0 && cf.test_gold.clusters[g].is_new;
        pool.emplace_back(detections[e].best_score, correct);
      }
    }
  }
  std::sort(pool.begin(), pool.end());  // lowest similarity first
  std::vector<bool> correct;
  correct.reserve(pool.size());
  for (const auto& [score, ok] : pool) correct.push_back(ok);
  return eval::EvaluateRanked(correct, cutoff);
}

GoldExperiment::InstanceMatchMetrics
GoldExperiment::ExistingInstanceMatching() {
  InstanceMatchMetrics out;
  int runs = 0;
  for (int fold = 0; fold < num_folds_; ++fold) {
    FoldState& state = Fold(fold);
    for (size_t ci = 0; ci < state.classes.size(); ++ci) {
      ClassFoldState& cf = state.classes[ci];
      const eval::GoldStandard& gs = gold_[ci];
      auto creator = state.pipeline->MakeEntityCreator();
      auto entities =
          GoldClusterEntities(cf.gold_rows, gs, cf.test_clusters,
                              state.gold_mapping, creator,
                              state.pipeline->Prepared(*gs_corpus_));
      std::vector<fusion::CreatedEntity> eval_entities;
      std::vector<const eval::GsCluster*> clusters;
      for (size_t k = 0; k < entities.size(); ++k) {
        if (entities[k].rows.empty()) continue;
        clusters.push_back(&gs.clusters[cf.test_clusters[k]]);
        eval_entities.push_back(std::move(entities[k]));
      }
      auto detections =
          state.pipeline->detector_for(gs.cls).Detect(eval_entities);

      int existing_total = 0, matched = 0, predicted = 0, correct = 0;
      for (size_t e = 0; e < detections.size(); ++e) {
        const bool gold_existing = !clusters[e]->is_new;
        if (gold_existing) ++existing_total;
        if (!detections[e].is_new &&
            detections[e].instance != kb::kInvalidInstance) {
          ++predicted;
          if (gold_existing &&
              detections[e].instance == clusters[e]->kb_instance) {
            ++correct;
            ++matched;
          }
        }
      }
      const double p =
          predicted == 0 ? 0.0 : static_cast<double>(correct) / predicted;
      const double r = existing_total == 0
                           ? 0.0
                           : static_cast<double>(matched) / existing_total;
      out.f1 += util::F1(p, r);
      out.accuracy += existing_total == 0
                          ? 0.0
                          : static_cast<double>(correct) / existing_total;
      ++runs;
    }
  }
  if (runs > 0) {
    out.f1 /= runs;
    out.accuracy /= runs;
  }
  return out;
}

}  // namespace ltee::pipeline
