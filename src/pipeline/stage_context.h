#ifndef LTEE_PIPELINE_STAGE_CONTEXT_H_
#define LTEE_PIPELINE_STAGE_CONTEXT_H_

#include <utility>
#include <vector>

#include "kb/knowledge_base.h"
#include "matching/schema_mapping.h"
#include "webtable/web_table.h"

namespace ltee::pipeline {

/// The set of classes a pipeline sweep recomputes. A full-scope run (the
/// batch path) contains every class; a delta run starts from the classes
/// its new tables invalidate and grows per iteration as mapping diffs
/// surface further affected classes.
class ClassScope {
 public:
  /// Scope containing every class (the batch path).
  static ClassScope All() {
    ClassScope scope;
    scope.full_ = true;
    return scope;
  }
  /// Scope containing exactly `classes` (empty is valid: a delta run
  /// derives its scope from mapping diffs alone).
  static ClassScope Of(std::vector<kb::ClassId> classes) {
    ClassScope scope;
    scope.full_ = false;
    for (kb::ClassId cls : classes) scope.Add(cls);
    return scope;
  }

  bool full() const { return full_; }
  size_t size() const { return classes_.size(); }

  bool contains(kb::ClassId cls) const {
    if (full_) return true;
    for (kb::ClassId c : classes_) {
      if (c == cls) return true;
    }
    return false;
  }

  /// No-op on a full scope or when already present.
  void Add(kb::ClassId cls) {
    if (full_ || cls == kb::kInvalidClass || contains(cls)) return;
    classes_.push_back(cls);
  }

  const std::vector<kb::ClassId>& classes() const { return classes_; }

 private:
  bool full_ = false;
  std::vector<kb::ClassId> classes_;
};

/// Feedback one class pass produces for the next schema-matching
/// iteration, in class-local form: cluster ids are the class's own dense
/// ids (no cross-class offset applied). MergeClassFeedback re-applies the
/// offsets in run-class order, so cached and freshly extracted feedback
/// merge identically.
struct ClassFeedback {
  kb::ClassId cls = kb::kInvalidClass;
  int num_clusters = 0;
  /// (row, class-local cluster id) for every clustered row.
  std::vector<std::pair<webtable::RowRef, int>> row_clusters;
  /// (row, matched KB instance) for every row of a non-new entity.
  std::vector<std::pair<webtable::RowRef, kb::InstanceId>> row_instances;
};

/// Baseline state from a previous run of the same pipeline on the same
/// (smaller) corpus: the per-iteration mappings and per-class feedback a
/// delta run diffs against and reuses for out-of-scope classes. Indexed
/// like the previous run: mappings[i] is iteration i's mapping,
/// feedback[i][k] is iteration i's feedback of StageContext::classes[k].
struct RunBaseline {
  const std::vector<matching::SchemaMapping>* mappings = nullptr;
  const std::vector<std::vector<ClassFeedback>>* feedback = nullptr;

  bool valid() const { return mappings != nullptr && feedback != nullptr; }
};

/// Everything one scoped pipeline run needs: the corpus (whose prepared
/// view auto-extends when tables were appended), the classes in run order,
/// the initial scope, and — for delta runs — the baseline to diff against.
/// Run() is exactly RunScoped with a full scope and no baseline, so the
/// batch and delta paths cannot diverge.
struct StageContext {
  const webtable::TableCorpus* corpus = nullptr;
  /// Classes in run order; a delta run must pass the baseline run's exact
  /// class order (feedback and changesets align by position).
  std::vector<kb::ClassId> classes;
  ClassScope scope = ClassScope::All();
  RunBaseline baseline;

  bool has_baseline() const { return baseline.valid(); }
};

/// Classes affected by the differences between two schema mappings: every
/// table whose TableMapping changed in any downstream-visible field
/// (class, class score, label column, column matches incl. scores, row
/// instances) contributes both its old and its new class. Tables beyond
/// `before`'s size (freshly appended) always count as changed.
struct MappingDiff {
  std::vector<webtable::TableId> changed_tables;
  std::vector<kb::ClassId> classes;
};
MappingDiff DiffMappings(const matching::SchemaMapping& before,
                         const matching::SchemaMapping& after);

}  // namespace ltee::pipeline

#endif  // LTEE_PIPELINE_STAGE_CONTEXT_H_
