#include "pipeline/gold_artifacts.h"

#include "matching/label_attribute.h"

namespace ltee::pipeline {

matching::SchemaMapping GoldSchemaMapping(const webtable::TableCorpus& corpus,
                                          const eval::GoldStandard& gold,
                                          const kb::KnowledgeBase& kb) {
  (void)kb;
  matching::SchemaMapping mapping;
  mapping.tables.resize(corpus.size());
  for (webtable::TableId tid : gold.tables) {
    const webtable::WebTable& table = corpus.table(tid);
    matching::TableMapping& tm = mapping.tables[tid];
    tm.table = tid;
    tm.cls = gold.cls;
    tm.class_score = 1.0;
    const auto column_types = matching::DetectColumnTypes(table);
    tm.columns.resize(table.num_columns());
    for (size_t c = 0; c < table.num_columns(); ++c) {
      tm.columns[c].detected = column_types[c];
    }
    tm.label_column = matching::DetectLabelColumn(table, column_types);
    tm.row_instance.assign(table.num_rows(), kb::kInvalidInstance);
  }
  for (const auto& attr : gold.attributes) {
    matching::TableMapping& tm = mapping.tables[attr.table];
    tm.columns[attr.column].property = attr.property;
    tm.columns[attr.column].score = 1.0;
  }
  for (const auto& cluster : gold.clusters) {
    if (cluster.is_new || cluster.kb_instance == kb::kInvalidInstance) {
      continue;
    }
    for (const auto& row : cluster.rows) {
      auto& tm = mapping.tables[row.table];
      if (row.row < static_cast<int>(tm.row_instance.size())) {
        tm.row_instance[row.row] = cluster.kb_instance;
      }
    }
  }
  return mapping;
}

void MergeGoldMappings(const matching::SchemaMapping& from,
                       matching::SchemaMapping* into) {
  if (into->tables.size() < from.tables.size()) {
    into->tables.resize(from.tables.size());
  }
  for (size_t t = 0; t < from.tables.size(); ++t) {
    if (from.tables[t].table >= 0 && into->tables[t].table < 0) {
      into->tables[t] = from.tables[t];
    }
  }
}

matching::RowInstanceMap GoldRowInstances(const eval::GoldStandard& gold) {
  matching::RowInstanceMap out;
  for (const auto& cluster : gold.clusters) {
    if (cluster.is_new || cluster.kb_instance == kb::kInvalidInstance) {
      continue;
    }
    for (const auto& row : cluster.rows) out[row] = cluster.kb_instance;
  }
  return out;
}

matching::RowClusterMap GoldRowClusters(const eval::GoldStandard& gold,
                                        int id_offset) {
  matching::RowClusterMap out;
  for (size_t c = 0; c < gold.clusters.size(); ++c) {
    for (const auto& row : gold.clusters[c].rows) {
      out[row] = id_offset + static_cast<int>(c);
    }
  }
  return out;
}

}  // namespace ltee::pipeline
