#ifndef LTEE_PIPELINE_RUN_SUMMARY_H_
#define LTEE_PIPELINE_RUN_SUMMARY_H_

#include <string>

#include "pipeline/pipeline.h"

namespace ltee::pipeline {

/// Deterministic, full-precision text rendering of a PipelineRunResult.
/// Every score is printed with enough digits to round-trip a double, so two
/// summaries are byte-identical iff the runs are numerically identical.
/// Used by the golden pipeline regression test and the `golden_pipeline`
/// tool that regenerates the checked-in summary.
std::string SummarizeRun(const PipelineRunResult& run);

}  // namespace ltee::pipeline

#endif  // LTEE_PIPELINE_RUN_SUMMARY_H_
