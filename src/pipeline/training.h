#ifndef LTEE_PIPELINE_TRAINING_H_
#define LTEE_PIPELINE_TRAINING_H_

#include <vector>

#include "eval/gold_standard.h"
#include "pipeline/pipeline.h"
#include "util/random.h"
#include "webtable/web_table.h"

namespace ltee::pipeline {

/// Trains every learned component of `pipeline` — per-class row clusterers
/// and new detectors, and both schema matchers — on the *entire* gold
/// standard (no cross-validation split). Used by the large-scale profiling
/// run (Section 5), which learns from the full gold standard and applies
/// the system to the whole corpus.
void TrainPipelineOnGold(LteePipeline* pipeline,
                         const webtable::TableCorpus& gs_corpus,
                         const std::vector<eval::GoldStandard>& gold,
                         util::Rng& rng);

}  // namespace ltee::pipeline

#endif  // LTEE_PIPELINE_TRAINING_H_
