#ifndef LTEE_PIPELINE_RUN_REPORT_H_
#define LTEE_PIPELINE_RUN_REPORT_H_

#include <string>
#include <vector>

#include "kb/knowledge_base.h"
#include "util/metrics.h"

namespace ltee::pipeline {

/// Wall time of one named pipeline stage.
struct StageTiming {
  std::string stage;
  double seconds = 0.0;
};

/// Stage timings of one class in one iteration of a Run.
struct ClassStageReport {
  kb::ClassId cls = kb::kInvalidClass;
  int iteration = 0;
  std::vector<StageTiming> stages;
  double total_seconds = 0.0;
};

/// Structured per-run accounting attached to every PipelineRunResult:
/// pipeline-level stage wall times (corpus preparation, each matching
/// iteration, each parallel class sweep), per-class × per-stage wall
/// times, and a snapshot of the process metrics registry taken when the
/// run finished. The paper's Section 5 profiles the pipeline per class
/// over ~17k tables; this is the machine-readable equivalent for our
/// runs.
struct RunReport {
  std::vector<StageTiming> stages;
  std::vector<ClassStageReport> classes;
  double total_seconds = 0.0;
  util::MetricsSnapshot metrics;
};

/// Serializes the report as one JSON object:
/// {"total_seconds":..,"stages":[{"stage":..,"seconds":..},..],
///  "classes":[{"cls":..,"iteration":..,"stages":[..]},..],
///  "metrics":{"counters":..,"gauges":..,"histograms":..}}.
std::string RunReportToJson(const RunReport& report);

}  // namespace ltee::pipeline

#endif  // LTEE_PIPELINE_RUN_REPORT_H_
