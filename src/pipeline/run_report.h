#ifndef LTEE_PIPELINE_RUN_REPORT_H_
#define LTEE_PIPELINE_RUN_REPORT_H_

#include <string>
#include <vector>

#include "kb/knowledge_base.h"
#include "util/metrics.h"

namespace ltee::pipeline {

/// Wall time and heap growth of one named pipeline stage.
struct StageTiming {
  std::string stage;
  double seconds = 0.0;
  /// Change in process-wide tracked live heap bytes across the stage
  /// (obsv::memtrack); negative when the stage freed more than it
  /// allocated, zero when tracking was off.
  long long live_bytes_delta = 0;
};

/// Stage timings of one class in one iteration of a Run.
struct ClassStageReport {
  kb::ClassId cls = kb::kInvalidClass;
  int iteration = 0;
  std::vector<StageTiming> stages;
  double total_seconds = 0.0;
};

/// Structured per-run accounting attached to every PipelineRunResult:
/// pipeline-level stage wall times (corpus preparation, each matching
/// iteration, each parallel class sweep), per-class × per-stage wall
/// times, and a snapshot of the process metrics registry taken when the
/// run finished. The paper's Section 5 profiles the pipeline per class
/// over ~17k tables; this is the machine-readable equivalent for our
/// runs.
struct RunReport {
  std::vector<StageTiming> stages;
  std::vector<ClassStageReport> classes;
  double total_seconds = 0.0;
  /// Peak resident set size of the process when the run finished
  /// (obsv::ReadPeakRssBytes); the regression gate reads it as
  /// `run/peak_rss_mb`.
  unsigned long long peak_rss_bytes = 0;
  /// Tracked live heap bytes when the run finished (zero when memtrack
  /// was off for the whole run).
  unsigned long long live_bytes_end = 0;
  util::MetricsSnapshot metrics;
};

/// Serializes the report as one JSON object:
/// {"total_seconds":..,"peak_rss_bytes":..,"live_bytes_end":..,
///  "stages":[{"stage":..,"seconds":..,"live_bytes_delta":..},..],
///  "classes":[{"cls":..,"iteration":..,"stages":[..]},..],
///  "metrics":{"counters":..,"gauges":..,"histograms":..}}.
std::string RunReportToJson(const RunReport& report);

}  // namespace ltee::pipeline

#endif  // LTEE_PIPELINE_RUN_REPORT_H_
