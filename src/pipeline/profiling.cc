#include "pipeline/profiling.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "pipeline/training.h"
#include "types/type_similarity.h"
#include "util/logging.h"

namespace ltee::pipeline {

namespace {

/// Majority world entity among an entity's rows, or -1.
int MajorityWorldEntity(const fusion::CreatedEntity& entity,
                        const synth::SyntheticDataset& dataset) {
  std::unordered_map<int, int> counts;
  for (const auto& row : entity.rows) {
    if (row.table < 0 ||
        row.table >= static_cast<int>(dataset.table_truth.size())) {
      continue;
    }
    const auto& truth = dataset.table_truth[row.table];
    if (row.row < 0 || row.row >= static_cast<int>(truth.row_entity.size())) {
      continue;
    }
    counts[truth.row_entity[row.row]] += 1;
  }
  int best = -1, best_count = 0;
  for (const auto& [eid, count] : counts) {
    if (count > best_count) {
      best_count = count;
      best = eid;
    }
  }
  if (best < 0 || 2 * best_count < static_cast<int>(entity.rows.size())) {
    return -1;
  }
  return best;
}

}  // namespace

LargeScaleResult RunLargeScaleProfiling(const synth::SyntheticDataset& dataset,
                                        const ProfilingOptions& options) {
  LargeScaleResult out;
  util::Rng rng(options.seed);

  LteePipeline pipeline(dataset.kb, options.pipeline);
  TrainPipelineOnGold(&pipeline, dataset.gs_corpus, dataset.gold, rng);

  std::vector<kb::ClassId> classes;
  for (const auto& gs : dataset.gold) classes.push_back(gs.cls);
  out.run = pipeline.Run(dataset.corpus, classes);

  const types::TypeSimilarityOptions sim_options;

  for (size_t ci = 0; ci < classes.size(); ++ci) {
    const kb::ClassId cls = classes[ci];
    const int profile_index = dataset.ProfileOfClass(cls);
    const auto& profile = dataset.world.profiles()[profile_index];
    const ClassRunResult& class_run = out.run.classes[ci];

    // Property id -> index within the profile (for truth comparisons).
    std::unordered_map<kb::PropertyId, int> property_index;
    for (size_t k = 0; k < dataset.property_ids[profile_index].size(); ++k) {
      property_index[dataset.property_ids[profile_index][k]] =
          static_cast<int>(k);
    }

    ClassProfilingResult result;
    result.class_name = profile.name;
    result.total_rows = class_run.rows.rows.size();

    std::set<kb::InstanceId> matched_instances;
    std::vector<int> new_entity_ids;
    for (size_t e = 0; e < class_run.entities.size(); ++e) {
      const auto& detection = class_run.detections[e];
      if (detection.is_new) {
        new_entity_ids.push_back(static_cast<int>(e));
        result.new_entities += 1;
        result.new_facts += class_run.entities[e].facts.size();
      } else {
        result.existing_entities += 1;
        if (detection.instance != kb::kInvalidInstance) {
          matched_instances.insert(detection.instance);
        }
      }
    }
    result.matched_kb_instances = matched_instances.size();
    result.matching_ratio =
        matched_instances.empty()
            ? 0.0
            : static_cast<double>(result.existing_entities) /
                  static_cast<double>(matched_instances.size());

    const kb::ClassStats kb_stats = dataset.kb.StatsOfClass(cls);
    result.instance_increase =
        kb_stats.instances == 0
            ? 0.0
            : static_cast<double>(result.new_entities) /
                  static_cast<double>(kb_stats.instances);
    result.fact_increase = kb_stats.facts == 0
                               ? 0.0
                               : static_cast<double>(result.new_facts) /
                                     static_cast<double>(kb_stats.facts);

    // ---- Table 12: property densities among new entities. ---------------
    std::unordered_map<kb::PropertyId, size_t> fact_counts;
    for (int e : new_entity_ids) {
      for (const auto& fact : class_run.entities[e].facts) {
        fact_counts[fact.property] += 1;
      }
    }
    for (kb::PropertyId pid : dataset.property_ids[profile_index]) {
      NewPropertyDensity row;
      row.property = dataset.kb.property(pid).name;
      row.facts = fact_counts.count(pid) ? fact_counts[pid] : 0;
      row.density = result.new_entities == 0
                        ? 0.0
                        : static_cast<double>(row.facts) /
                              static_cast<double>(result.new_entities);
      result.property_densities.push_back(std::move(row));
    }
    std::sort(result.property_densities.begin(),
              result.property_densities.end(),
              [](const NewPropertyDensity& a, const NewPropertyDensity& b) {
                return a.facts > b.facts;
              });

    // ---- Stratified sample of new entities by fact count. ---------------
    std::unordered_map<size_t, std::vector<int>> by_fact_count;
    for (int e : new_entity_ids) {
      by_fact_count[class_run.entities[e].facts.size()].push_back(e);
    }
    std::vector<int> sample;
    for (auto& [count, ids] : by_fact_count) {
      rng.Shuffle(&ids);
      const size_t want = std::max<size_t>(
          1, static_cast<size_t>(std::llround(
                 static_cast<double>(options.sample_size) *
                 static_cast<double>(ids.size()) /
                 std::max<size_t>(1, new_entity_ids.size()))));
      for (size_t k = 0; k < std::min(want, ids.size()); ++k) {
        sample.push_back(ids[k]);
      }
    }

    // ---- Accuracies against the synthetic ground truth. ------------------
    auto entity_correct = [&](int e) {
      const int world_id =
          MajorityWorldEntity(class_run.entities[e], dataset);
      if (world_id < 0) return false;
      const synth::WorldEntity& world_entity = dataset.world.entity(world_id);
      return world_entity.profile_index == profile_index &&
             !world_entity.in_kb;
    };

    size_t correct_entities = 0;
    size_t facts_total = 0, facts_correct = 0;
    std::map<int, std::pair<size_t, size_t>> min_fact_buckets;  // k -> (n, ok)
    for (int e : sample) {
      const bool ok = entity_correct(e);
      if (ok) ++correct_entities;
      const size_t fact_count = class_run.entities[e].facts.size();
      for (int k = 2; k <= 3; ++k) {
        if (fact_count >= static_cast<size_t>(k)) {
          min_fact_buckets[k].first += 1;
          min_fact_buckets[k].second += ok ? 1 : 0;
        }
      }
      // Fact accuracy over the sampled entities.
      const int world_id =
          MajorityWorldEntity(class_run.entities[e], dataset);
      for (const auto& fact : class_run.entities[e].facts) {
        ++facts_total;
        if (world_id < 0) continue;
        const synth::WorldEntity& world_entity =
            dataset.world.entity(world_id);
        if (world_entity.profile_index != profile_index) continue;
        auto it = property_index.find(fact.property);
        if (it == property_index.end()) continue;
        if (types::ValuesEqual(fact.value, world_entity.truth[it->second],
                               sim_options)) {
          ++facts_correct;
        }
      }
    }
    result.new_entity_accuracy =
        sample.empty() ? 0.0
                       : static_cast<double>(correct_entities) /
                             static_cast<double>(sample.size());
    result.new_fact_accuracy =
        facts_total == 0 ? 0.0
                         : static_cast<double>(facts_correct) /
                               static_cast<double>(facts_total);
    for (const auto& [k, bucket] : min_fact_buckets) {
      result.accuracy_with_min_facts[k] =
          bucket.first == 0 ? 0.0
                            : static_cast<double>(bucket.second) /
                                  static_cast<double>(bucket.first);
    }

    out.classes.push_back(std::move(result));
  }
  return out;
}

}  // namespace ltee::pipeline
