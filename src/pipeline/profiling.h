#ifndef LTEE_PIPELINE_PROFILING_H_
#define LTEE_PIPELINE_PROFILING_H_

#include <map>
#include <string>
#include <vector>

#include "pipeline/pipeline.h"
#include "synth/dataset.h"
#include "util/random.h"

namespace ltee::pipeline {

/// One Table 12 row: facts and density of a property among new entities.
struct NewPropertyDensity {
  std::string property;
  size_t facts = 0;
  double density = 0.0;
};

/// One Table 11 row plus the Table 12 block and the Section 5 accuracy-by-
/// minimum-fact-count analysis for one class.
struct ClassProfilingResult {
  std::string class_name;
  size_t total_rows = 0;
  size_t existing_entities = 0;
  size_t matched_kb_instances = 0;
  double matching_ratio = 0.0;
  size_t new_entities = 0;
  size_t new_facts = 0;
  /// Relative increases vs. the KB's instance / fact counts of the class.
  double instance_increase = 0.0;
  double fact_increase = 0.0;
  /// Accuracies measured on a stratified sample of new entities, checked
  /// against the synthetic ground truth (the paper's manual annotation).
  double new_entity_accuracy = 0.0;
  double new_fact_accuracy = 0.0;
  /// new_entity_accuracy restricted to entities with >= k facts (Section 5
  /// discusses k = 2 and 3 for GF-Player).
  std::map<int, double> accuracy_with_min_facts;
  std::vector<NewPropertyDensity> property_densities;
};

/// Full large-scale profiling result (Section 5).
struct LargeScaleResult {
  PipelineRunResult run;
  std::vector<ClassProfilingResult> classes;
};

/// Options of the profiling run.
struct ProfilingOptions {
  PipelineOptions pipeline;
  /// Stratified sample size per class (the paper samples 50).
  size_t sample_size = 50;
  uint64_t seed = 99;
};

/// Trains the pipeline on the full gold standard, runs it over the entire
/// corpus, and evaluates the new entities against the synthetic ground
/// truth with a stratified sample — reproducing Tables 11 and 12.
LargeScaleResult RunLargeScaleProfiling(const synth::SyntheticDataset& dataset,
                                        const ProfilingOptions& options = {});

}  // namespace ltee::pipeline

#endif  // LTEE_PIPELINE_PROFILING_H_
