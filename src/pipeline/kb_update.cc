#include "pipeline/kb_update.h"

#include <ostream>

#include "prov/ledger.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace ltee::pipeline {

namespace {

/// URI-safe slug of a label: lower-case tokens joined by underscores.
std::string Slug(const std::string& label) {
  auto tokens = util::Tokenize(label);
  return util::Join(tokens, "_");
}

std::string LiteralOf(const types::Value& v) {
  using types::DataType;
  switch (v.type) {
    case DataType::kDate:
      if (v.date.granularity == types::DateGranularity::kYear) {
        return "\"" + std::to_string(v.date.year) +
               "\"^^<http://www.w3.org/2001/XMLSchema#gYear>";
      }
      return "\"" + v.ToString() +
             "\"^^<http://www.w3.org/2001/XMLSchema#date>";
    case DataType::kQuantity:
      return "\"" + v.ToString() +
             "\"^^<http://www.w3.org/2001/XMLSchema#double>";
    case DataType::kNominalInteger:
      return "\"" + v.ToString() +
             "\"^^<http://www.w3.org/2001/XMLSchema#integer>";
    default:
      return "\"" + v.text + "\"";
  }
}

}  // namespace

KbUpdateResult AddNewEntitiesToKb(
    kb::KnowledgeBase* kb, const std::vector<fusion::CreatedEntity>& entities,
    const std::vector<newdetect::Detection>& detections,
    const KbUpdateOptions& options) {
  util::trace::ScopedSpan span("pipeline.kb_update");
  span.AddArg("entities", entities.size());
  KbUpdateResult result;
  const bool prov_enabled = prov::IsEnabled();
  for (size_t e = 0; e < entities.size(); ++e) {
    if (!detections[e].is_new) continue;
    const fusion::CreatedEntity& entity = entities[e];
    if (entity.labels.empty() || entity.facts.size() < options.min_facts) {
      if (prov_enabled) {
        prov::KbUpdateDecision decision;
        decision.cls = entity.cls;
        decision.cluster_id = entity.cluster_id;
        if (!entity.labels.empty()) decision.subject = entity.labels.front();
        decision.accepted = false;
        decision.reason =
            entity.labels.empty() ? "no_labels" : "below_min_facts";
        prov::Record(std::move(decision));
      }
      continue;
    }
    const kb::InstanceId id = kb->AddInstance(entity.cls, entity.labels);
    for (const auto& fact : entity.facts) {
      kb->AddFact(id, fact.property, fact.value);
      result.facts_added += 1;
      if (prov_enabled) {
        prov::KbUpdateDecision decision;
        decision.cls = entity.cls;
        decision.cluster_id = entity.cluster_id;
        decision.subject = entity.labels.front();
        decision.property = fact.property;
        decision.property_name = kb->property(fact.property).name;
        decision.value = fact.value.ToString();
        decision.accepted = true;
        decision.reason = "new_entity";
        prov::Record(std::move(decision));
      }
    }
    result.new_instance_ids.push_back(id);
    result.instances_added += 1;
  }
  span.AddArg("instances_added", static_cast<long long>(result.instances_added));
  span.AddArg("facts_added", static_cast<long long>(result.facts_added));
  util::Metrics().GetCounter("ltee.kbupdate.instances_added")
      .Increment(static_cast<uint64_t>(result.instances_added));
  util::Metrics().GetCounter("ltee.kbupdate.facts_added")
      .Increment(static_cast<uint64_t>(result.facts_added));
  return result;
}

void ExportNTriples(const kb::KnowledgeBase& kb,
                    const std::vector<fusion::CreatedEntity>& entities,
                    const std::vector<newdetect::Detection>& detections,
                    const std::string& uri_prefix, std::ostream& out,
                    const KbUpdateOptions& options) {
  size_t serial = 0;
  for (size_t e = 0; e < entities.size(); ++e) {
    if (!detections[e].is_new) continue;
    const fusion::CreatedEntity& entity = entities[e];
    if (entity.labels.empty() || entity.facts.size() < options.min_facts) {
      continue;
    }
    const std::string subject = "<" + uri_prefix + "resource/" +
                                Slug(entity.labels.front()) + "_" +
                                std::to_string(serial++) + ">";
    out << subject
        << " <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <"
        << uri_prefix << "ontology/" << kb.cls(entity.cls).name << "> .\n";
    for (const auto& label : entity.labels) {
      out << subject << " <http://www.w3.org/2000/01/rdf-schema#label> \""
          << label << "\" .\n";
    }
    for (const auto& fact : entity.facts) {
      out << subject << " <" << uri_prefix << "ontology/"
          << kb.property(fact.property).name << "> ";
      if (fact.value.type == types::DataType::kInstanceReference) {
        out << "<" << uri_prefix << "resource/" << Slug(fact.value.text)
            << ">";
      } else {
        out << LiteralOf(fact.value);
      }
      out << " .\n";
    }
  }
}

}  // namespace ltee::pipeline
