#include "pipeline/kb_update.h"

#include <ostream>

#include "prov/ledger.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace ltee::pipeline {

namespace {

/// URI-safe slug of a label: lower-case tokens joined by underscores.
std::string Slug(const std::string& label) {
  auto tokens = util::Tokenize(label);
  return util::Join(tokens, "_");
}

std::string LiteralOf(const types::Value& v) {
  using types::DataType;
  switch (v.type) {
    case DataType::kDate:
      if (v.date.granularity == types::DateGranularity::kYear) {
        return "\"" + std::to_string(v.date.year) +
               "\"^^<http://www.w3.org/2001/XMLSchema#gYear>";
      }
      return "\"" + v.ToString() +
             "\"^^<http://www.w3.org/2001/XMLSchema#date>";
    case DataType::kQuantity:
      return "\"" + v.ToString() +
             "\"^^<http://www.w3.org/2001/XMLSchema#double>";
    case DataType::kNominalInteger:
      return "\"" + v.ToString() +
             "\"^^<http://www.w3.org/2001/XMLSchema#integer>";
    default:
      return "\"" + v.text + "\"";
  }
}

}  // namespace

kb::ClassChange BuildClassChange(
    kb::ClassId cls, const std::vector<fusion::CreatedEntity>& entities,
    const std::vector<newdetect::Detection>& detections,
    const std::vector<SlotFill>& fills, const KbUpdateOptions& options) {
  kb::ClassChange change;
  change.cls = cls;
  for (const SlotFill& fill : fills) {
    change.fact_adds.push_back(
        kb::FactAdd{fill.instance, fill.property, fill.value});
  }
  const bool prov_enabled = prov::IsEnabled();
  for (size_t e = 0; e < entities.size(); ++e) {
    if (!detections[e].is_new) continue;
    const fusion::CreatedEntity& entity = entities[e];
    if (entity.labels.empty() || entity.facts.size() < options.min_facts) {
      if (prov_enabled) {
        prov::KbUpdateDecision decision;
        decision.cls = entity.cls;
        decision.cluster_id = entity.cluster_id;
        if (!entity.labels.empty()) decision.subject = entity.labels.front();
        decision.accepted = false;
        decision.reason =
            entity.labels.empty() ? "no_labels" : "below_min_facts";
        prov::Record(std::move(decision));
      }
      continue;
    }
    kb::EntityAdd add;
    add.cls = entity.cls;
    add.cluster_id = entity.cluster_id;
    add.labels = entity.labels;
    add.facts = entity.facts;
    change.entities.push_back(std::move(add));
  }
  return change;
}

KbUpdateResult AddNewEntitiesToKb(
    kb::KnowledgeBase* kb, const std::vector<fusion::CreatedEntity>& entities,
    const std::vector<newdetect::Detection>& detections,
    const KbUpdateOptions& options) {
  util::trace::ScopedSpan span("pipeline.kb_update");
  span.AddArg("entities", entities.size());
  kb::Applier applier(kb);
  kb::ClassChange change = BuildClassChange(
      entities.empty() ? kb::kInvalidClass : entities.front().cls, entities,
      detections, /*fills=*/{}, options);
  applier.Stage(std::move(change));
  const kb::ApplyOutcome outcome = applier.Apply();
  KbUpdateResult result;
  result.instances_added = outcome.instances_added;
  result.facts_added = outcome.facts_added;
  for (const kb::ClassApplyOutcome& cls_outcome : outcome.classes) {
    result.new_instance_ids.insert(result.new_instance_ids.end(),
                                   cls_outcome.new_instance_ids.begin(),
                                   cls_outcome.new_instance_ids.end());
  }
  span.AddArg("instances_added", static_cast<long long>(result.instances_added));
  span.AddArg("facts_added", static_cast<long long>(result.facts_added));
  return result;
}

void ExportNTriples(const kb::KnowledgeBase& kb,
                    const std::vector<fusion::CreatedEntity>& entities,
                    const std::vector<newdetect::Detection>& detections,
                    const std::string& uri_prefix, std::ostream& out,
                    const KbUpdateOptions& options) {
  size_t serial = 0;
  for (size_t e = 0; e < entities.size(); ++e) {
    if (!detections[e].is_new) continue;
    const fusion::CreatedEntity& entity = entities[e];
    if (entity.labels.empty() || entity.facts.size() < options.min_facts) {
      continue;
    }
    const std::string subject = "<" + uri_prefix + "resource/" +
                                Slug(entity.labels.front()) + "_" +
                                std::to_string(serial++) + ">";
    out << subject
        << " <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <"
        << uri_prefix << "ontology/" << kb.cls(entity.cls).name << "> .\n";
    for (const auto& label : entity.labels) {
      out << subject << " <http://www.w3.org/2000/01/rdf-schema#label> \""
          << label << "\" .\n";
    }
    for (const auto& fact : entity.facts) {
      out << subject << " <" << uri_prefix << "ontology/"
          << kb.property(fact.property).name << "> ";
      if (fact.value.type == types::DataType::kInstanceReference) {
        out << "<" << uri_prefix << "resource/" << Slug(fact.value.text)
            << ">";
      } else {
        out << LiteralOf(fact.value);
      }
      out << " .\n";
    }
  }
}

}  // namespace ltee::pipeline
