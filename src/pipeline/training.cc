#include "pipeline/training.h"

#include "pipeline/gold_artifacts.h"
#include "util/logging.h"

namespace ltee::pipeline {

void TrainPipelineOnGold(LteePipeline* pipeline,
                         const webtable::TableCorpus& gs_corpus,
                         const std::vector<eval::GoldStandard>& gold,
                         util::Rng& rng) {
  // Merged gold mapping over the GS corpus.
  matching::SchemaMapping gold_mapping;
  gold_mapping.tables.resize(gs_corpus.size());
  for (const auto& gs : gold) {
    auto class_mapping =
        GoldSchemaMapping(gs_corpus, gs, pipeline->knowledge_base());
    MergeGoldMappings(class_mapping, &gold_mapping);
  }

  std::vector<webtable::TableId> all_tables;
  std::vector<matching::AttributeAnnotation> annotations;

  const webtable::PreparedCorpus& prepared = pipeline->Prepared(gs_corpus);

  for (const auto& gs : gold) {
    // Row set of the class under the gold mapping.
    auto rows = rowcluster::BuildClassRowSet(
        prepared, gold_mapping, gs.cls, pipeline->knowledge_base(),
        pipeline->kb_index(), pipeline->options().row_features);
    std::vector<int> assignment(rows.rows.size(), -1);
    for (size_t i = 0; i < rows.rows.size(); ++i) {
      assignment[i] = gs.ClusterOfRow(rows.rows[i].ref);
    }
    pipeline->clusterer_for(gs.cls).Train(rows, assignment, rng);

    // New detector on gold-cluster entities.
    auto creator = pipeline->MakeEntityCreator();
    std::vector<int> dense_assignment(rows.rows.size(), -1);
    for (size_t i = 0; i < rows.rows.size(); ++i) {
      dense_assignment[i] = assignment[i];
    }
    auto entities =
        creator.Create(rows, dense_assignment, gold_mapping, prepared);
    std::vector<fusion::CreatedEntity> train_entities;
    std::vector<newdetect::DetectionLabel> labels;
    for (size_t k = 0; k < entities.size() && k < gs.clusters.size(); ++k) {
      if (entities[k].rows.empty()) continue;
      train_entities.push_back(std::move(entities[k]));
      labels.push_back({gs.clusters[k].is_new, gs.clusters[k].kb_instance});
    }
    pipeline->detector_for(gs.cls).Train(train_entities, labels, rng);

    for (webtable::TableId tid : gs.tables) all_tables.push_back(tid);
    for (const auto& attr : gs.attributes) {
      annotations.push_back({attr.table, attr.column, attr.property});
    }
  }

  pipeline->schema_matcher_first().Learn(prepared, all_tables, annotations,
                                         {}, rng);
  // Learn the refined matcher against real first-iteration system feedback
  // so its weights match inference-time conditions.
  auto mapping1 = pipeline->schema_matcher_first().Match(prepared);
  std::vector<ClassRunResult> first_pass;
  for (const auto& gs : gold) {
    first_pass.push_back(pipeline->RunClass(gs_corpus, mapping1, gs.cls));
  }
  matching::RowInstanceMap system_instances;
  matching::RowClusterMap system_clusters;
  LteePipeline::CollectFeedback(first_pass, &system_instances,
                                &system_clusters);
  matching::MatcherFeedback feedback;
  feedback.row_instances = &system_instances;
  feedback.row_clusters = &system_clusters;
  feedback.preliminary = &mapping1;
  pipeline->schema_matcher_refined().Learn(prepared, all_tables, annotations,
                                           feedback, rng);
  LTEE_LOG(kInfo) << "pipeline trained on full gold standard";
}

}  // namespace ltee::pipeline
