#include "pipeline/stage_context.h"

#include <algorithm>

namespace ltee::pipeline {

MappingDiff DiffMappings(const matching::SchemaMapping& before,
                         const matching::SchemaMapping& after) {
  MappingDiff diff;
  auto add_class = [&diff](kb::ClassId cls) {
    if (cls == kb::kInvalidClass) return;
    if (std::find(diff.classes.begin(), diff.classes.end(), cls) ==
        diff.classes.end()) {
      diff.classes.push_back(cls);
    }
  };
  const size_t common = std::min(before.tables.size(), after.tables.size());
  for (size_t t = 0; t < common; ++t) {
    if (before.tables[t] == after.tables[t]) continue;
    diff.changed_tables.push_back(static_cast<webtable::TableId>(t));
    add_class(before.tables[t].cls);
    add_class(after.tables[t].cls);
  }
  // Tables present in only one mapping (appended since the baseline run,
  // or — degenerate — removed) are changes by definition.
  const size_t longest = std::max(before.tables.size(), after.tables.size());
  for (size_t t = common; t < longest; ++t) {
    diff.changed_tables.push_back(static_cast<webtable::TableId>(t));
    if (t < before.tables.size()) add_class(before.tables[t].cls);
    if (t < after.tables.size()) add_class(after.tables[t].cls);
  }
  std::sort(diff.classes.begin(), diff.classes.end());
  return diff;
}

}  // namespace ltee::pipeline
