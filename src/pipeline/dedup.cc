#include "pipeline/dedup.h"

#include <algorithm>
#include <iterator>
#include <unordered_map>

#include "prov/ledger.h"
#include "util/metrics.h"
#include "util/similarity.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace ltee::pipeline {

namespace {

/// True when the overlapping facts of `a` and `b` agree strongly enough.
bool FactsAgree(const fusion::CreatedEntity& a, const fusion::CreatedEntity& b,
                const DedupOptions& options, bool* had_overlap) {
  int overlap = 0, agree = 0;
  for (const auto& fact : a.facts) {
    const types::Value* other = b.FactOf(fact.property);
    if (other == nullptr) continue;
    ++overlap;
    if (types::ValuesEqual(fact.value, *other, options.similarity)) ++agree;
  }
  *had_overlap = overlap > 0;
  if (overlap == 0) return options.merge_without_fact_overlap;
  return static_cast<double>(agree) / overlap >= options.fact_agreement;
}

bool LabelsSimilar(const fusion::CreatedEntity& a,
                   const fusion::CreatedEntity& b,
                   const DedupOptions& options) {
  for (const auto& la : a.labels) {
    for (const auto& lb : b.labels) {
      if (util::MongeElkanLevenshtein(la, lb) >= options.label_threshold) {
        return true;
      }
    }
  }
  return false;
}

/// Absorbs `src` into `dst`: rows, labels, bow, missing facts.
void Absorb(fusion::CreatedEntity* dst, const fusion::CreatedEntity& src) {
  for (const auto& row : src.rows) dst->rows.push_back(row);
  for (const auto& label : src.labels) {
    if (std::find(dst->labels.begin(), dst->labels.end(), label) ==
        dst->labels.end()) {
      dst->labels.push_back(label);
    }
  }
  std::vector<uint32_t> merged_bow;
  merged_bow.reserve(dst->bow.size() + src.bow.size());
  std::set_union(dst->bow.begin(), dst->bow.end(), src.bow.begin(),
                 src.bow.end(), std::back_inserter(merged_bow));
  dst->bow = std::move(merged_bow);
  for (const auto& fact : src.facts) {
    if (dst->FactOf(fact.property) == nullptr) dst->facts.push_back(fact);
  }
}

}  // namespace

DedupResult DeduplicateEntities(std::vector<fusion::CreatedEntity> entities,
                                std::vector<newdetect::Detection> detections,
                                const DedupOptions& options) {
  util::trace::ScopedSpan span("pipeline.dedup");
  span.AddArg("entities", entities.size());
  DedupResult result;
  // Block by normalized primary label to avoid the quadratic scan.
  std::unordered_map<std::string, std::vector<size_t>> by_label;
  for (size_t e = 0; e < entities.size(); ++e) {
    if (entities[e].labels.empty()) continue;
    by_label[util::NormalizeLabel(entities[e].labels.front())].push_back(e);
  }

  std::vector<int> merged_into(entities.size(), -1);
  for (auto& [label, members] : by_label) {
    for (size_t i = 0; i < members.size(); ++i) {
      const size_t a = members[i];
      if (merged_into[a] >= 0) continue;
      for (size_t j = i + 1; j < members.size(); ++j) {
        const size_t b = members[j];
        if (merged_into[b] >= 0) continue;
        if (!LabelsSimilar(entities[a], entities[b], options)) continue;
        bool had_overlap = false;
        if (!FactsAgree(entities[a], entities[b], options, &had_overlap)) {
          continue;
        }
        if (prov::IsEnabled()) {
          prov::DedupDecision decision;
          decision.cls = entities[a].cls;
          decision.surviving_cluster = entities[a].cluster_id;
          decision.absorbed_cluster = entities[b].cluster_id;
          for (const auto& fact : entities[b].facts) {
            if (entities[a].FactOf(fact.property) == nullptr) {
              decision.facts_adopted += 1;
            }
          }
          if (!entities[a].labels.empty()) {
            decision.label = entities[a].labels.front();
          }
          prov::Record(std::move(decision));
        }
        Absorb(&entities[a], entities[b]);
        // Prefer an existing-instance detection over "new".
        if (detections[a].is_new && !detections[b].is_new) {
          detections[a] = detections[b];
        }
        merged_into[b] = static_cast<int>(a);
        result.merges += 1;
      }
    }
  }

  for (size_t e = 0; e < entities.size(); ++e) {
    if (merged_into[e] >= 0) continue;
    result.entities.push_back(std::move(entities[e]));
    result.detections.push_back(detections[e]);
  }
  span.AddArg("merges", static_cast<long long>(result.merges));
  util::Metrics().GetCounter("ltee.dedup.merges").Increment(
      static_cast<uint64_t>(result.merges));
  return result;
}

}  // namespace ltee::pipeline
