#ifndef LTEE_PIPELINE_GOLD_ARTIFACTS_H_
#define LTEE_PIPELINE_GOLD_ARTIFACTS_H_

#include <vector>

#include "eval/gold_standard.h"
#include "kb/knowledge_base.h"
#include "matching/schema_mapping.h"
#include "webtable/web_table.h"

namespace ltee::pipeline {

/// Gold-truth schema mapping for the tables of one gold standard: the
/// class is the gold class, column-to-property correspondences come from
/// the annotations (score 1.0), the label column from label-attribute
/// detection, and row-instance matches from the existing clusters.
/// The result is sized to `corpus` with non-gold tables left unmapped;
/// merge several classes' mappings with MergeGoldMappings.
matching::SchemaMapping GoldSchemaMapping(const webtable::TableCorpus& corpus,
                                          const eval::GoldStandard& gold,
                                          const kb::KnowledgeBase& kb);

/// Overlays `from`'s mapped tables onto `into` (tables mapped in both keep
/// `into`'s entry).
void MergeGoldMappings(const matching::SchemaMapping& from,
                       matching::SchemaMapping* into);

/// Row -> instance correspondences implied by the existing gold clusters.
matching::RowInstanceMap GoldRowInstances(const eval::GoldStandard& gold);

/// Row -> cluster ids implied by the gold clusters, offset by `id_offset`
/// (so that several classes' clusters stay disjoint).
matching::RowClusterMap GoldRowClusters(const eval::GoldStandard& gold,
                                        int id_offset = 0);

}  // namespace ltee::pipeline

#endif  // LTEE_PIPELINE_GOLD_ARTIFACTS_H_
