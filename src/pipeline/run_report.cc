#include "pipeline/run_report.h"

#include "util/json.h"

namespace ltee::pipeline {

namespace {

void AppendStages(std::string* out, const std::vector<StageTiming>& stages) {
  out->push_back('[');
  for (size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) out->push_back(',');
    out->append("{\"stage\":");
    out->append(util::JsonQuote(stages[i].stage));
    out->append(",\"seconds\":");
    util::AppendJsonNumber(out, stages[i].seconds);
    out->append(",\"live_bytes_delta\":");
    out->append(std::to_string(stages[i].live_bytes_delta));
    out->push_back('}');
  }
  out->push_back(']');
}

}  // namespace

std::string RunReportToJson(const RunReport& report) {
  std::string out;
  out.append("{\"total_seconds\":");
  util::AppendJsonNumber(&out, report.total_seconds);
  out.append(",\"peak_rss_bytes\":");
  out.append(std::to_string(report.peak_rss_bytes));
  out.append(",\"live_bytes_end\":");
  out.append(std::to_string(report.live_bytes_end));
  out.append(",\"stages\":");
  AppendStages(&out, report.stages);
  out.append(",\"classes\":[");
  for (size_t c = 0; c < report.classes.size(); ++c) {
    const ClassStageReport& cls = report.classes[c];
    if (c > 0) out.push_back(',');
    out.append("{\"cls\":");
    out.append(std::to_string(cls.cls));
    out.append(",\"iteration\":");
    out.append(std::to_string(cls.iteration));
    out.append(",\"total_seconds\":");
    util::AppendJsonNumber(&out, cls.total_seconds);
    out.append(",\"stages\":");
    AppendStages(&out, cls.stages);
    out.push_back('}');
  }
  out.append("],\"metrics\":");
  out.append(report.metrics.ToJson());
  out.push_back('}');
  return out;
}

}  // namespace ltee::pipeline
