#ifndef LTEE_PIPELINE_PIPELINE_H_
#define LTEE_PIPELINE_PIPELINE_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "fusion/entity_creator.h"
#include "index/label_index.h"
#include "kb/knowledge_base.h"
#include "matching/schema_matcher.h"
#include "newdetect/new_detector.h"
#include "pipeline/run_report.h"
#include "pipeline/stage_context.h"
#include "rowcluster/row_clusterer.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/token_dictionary.h"
#include "webtable/prepared_corpus.h"
#include "webtable/web_table.h"

namespace ltee::pipeline {

/// Configuration of the full pipeline.
struct PipelineOptions {
  matching::SchemaMatcherOptions schema;
  rowcluster::RowFeatureOptions row_features;
  rowcluster::RowClustererOptions clustering;
  fusion::EntityCreatorOptions fusion;
  newdetect::NewDetectorOptions detection;
  /// Number of pipeline iterations; the paper shows two suffice (Table 6).
  int iterations = 2;
  /// Worker threads for corpus preparation and per-class execution
  /// (0 = hardware concurrency). Results are independent of this value:
  /// classes are merged back in deterministic class order.
  int num_threads = 0;
};

/// Per-class output of one pipeline pass.
struct ClassRunResult {
  kb::ClassId cls = kb::kInvalidClass;
  rowcluster::ClassRowSet rows;
  std::vector<int> cluster_of_row;
  int num_clusters = 0;
  std::vector<fusion::CreatedEntity> entities;
  std::vector<newdetect::Detection> detections;
  /// Wall time per stage of this class pass (build_rows, cluster, fuse,
  /// detect), recorded by RunClass for the run report.
  std::vector<StageTiming> stage_seconds;
  double total_seconds = 0.0;
};

/// Output of a full multi-iteration run.
struct PipelineRunResult {
  /// Schema mapping per iteration (mappings.back() is the final one).
  std::vector<matching::SchemaMapping> mappings;
  /// Final-iteration class results. A full-scope run has one entry per
  /// requested class; a delta run has one entry per *recomputed* class
  /// (same order), matching `recomputed`.
  std::vector<ClassRunResult> classes;
  /// Per-iteration, per-class feedback snapshots in run-class order — the
  /// state a later delta run diffs against and reuses for classes outside
  /// its scope (ignored by SummarizeRun, like `report`).
  std::vector<std::vector<ClassFeedback>> feedback;
  /// Classes the final iteration actually recomputed, in run order.
  std::vector<kb::ClassId> recomputed;
  /// Per-stage / per-class wall times and the metrics snapshot taken at
  /// the end of the run (ignored by SummarizeRun, so golden summaries are
  /// unaffected).
  RunReport report;
};

/// The complete LTEE system (Figure 1): schema matching -> row clustering
/// -> entity creation -> new detection, iterated twice with the first
/// run's clusters and correspondences refining the schema mapping.
///
/// The pipeline owns one schema matcher per iteration stage (the first has
/// no duplicate-based matchers to learn against) and per-class clusterers
/// and detectors (the paper learns weights per class).
class LteePipeline {
 public:
  /// Builds the KB label index internally. `kb` must outlive the pipeline.
  LteePipeline(const kb::KnowledgeBase& kb, PipelineOptions options);

  const index::LabelIndex& kb_index() const { return kb_index_; }
  const kb::KnowledgeBase& knowledge_base() const { return *kb_; }
  const PipelineOptions& options() const { return options_; }

  /// Pipeline-wide token dictionary shared by the KB index, the prepared
  /// corpora and every downstream component.
  const std::shared_ptr<util::TokenDictionary>& dict() const { return dict_; }

  /// Prepared (tokenized + typed) view of `corpus`, built on first use and
  /// memoized per corpus. The corpus must stay alive while the pipeline
  /// uses it. Thread-safe.
  const webtable::PreparedCorpus& Prepared(
      const webtable::TableCorpus& corpus) const;

  matching::SchemaMatcher& schema_matcher_first() { return *schema_first_; }
  matching::SchemaMatcher& schema_matcher_refined() {
    return *schema_refined_;
  }

  /// Per-class components; created on first access with the configured
  /// options.
  rowcluster::RowClusterer& clusterer_for(kb::ClassId cls);
  newdetect::NewDetector& detector_for(kb::ClassId cls);
  const rowcluster::RowClusterer& clusterer_for(kb::ClassId cls) const;
  const newdetect::NewDetector& detector_for(kb::ClassId cls) const;

  fusion::EntityCreator MakeEntityCreator() const {
    return fusion::EntityCreator(*kb_, options_.fusion);
  }
  fusion::EntityCreator MakeEntityCreator(fusion::ScoringApproach scoring) const {
    fusion::EntityCreatorOptions opts = options_.fusion;
    opts.scoring = scoring;
    return fusion::EntityCreator(*kb_, opts);
  }

  /// Runs clustering, entity creation and new detection for one class
  /// under `mapping`. Requires the class components to be trained.
  ClassRunResult RunClass(const webtable::TableCorpus& corpus,
                          const matching::SchemaMapping& mapping,
                          kb::ClassId cls) const;

  /// Full multi-iteration run for `classes`: RunScoped with a full scope
  /// and no baseline.
  PipelineRunResult Run(const webtable::TableCorpus& corpus,
                        const std::vector<kb::ClassId>& classes) const;

  /// Scoped multi-iteration run. Schema matching always covers the whole
  /// corpus (its inputs are corpus-global and cheap relative to the class
  /// stages); the per-class stages — row clustering, fusion, new
  /// detection — run only for classes in scope. With a baseline the scope
  /// grows per iteration by DiffMappings against the baseline mapping, and
  /// feedback of out-of-scope classes is replayed from the baseline, so a
  /// delta run over corpus A+B reproduces bit for bit what a full run
  /// computes for the affected classes.
  PipelineRunResult RunScoped(const StageContext& ctx) const;

  /// Aggregates feedback maps from class results, offsetting cluster ids
  /// so clusters of different classes never collide.
  static void CollectFeedback(const std::vector<ClassRunResult>& classes,
                              matching::RowInstanceMap* instances,
                              matching::RowClusterMap* clusters);

  /// Class-local feedback of one class result (cluster ids unoffset).
  static ClassFeedback ExtractClassFeedback(const ClassRunResult& result);

  /// Merges per-class feedback in run-class order into the matcher maps,
  /// applying the same cumulative cluster-id offsets CollectFeedback
  /// applies — cached and fresh feedback merge identically.
  static void MergeClassFeedback(const std::vector<ClassFeedback>& classes,
                                 matching::RowInstanceMap* instances,
                                 matching::RowClusterMap* clusters);

 private:
  /// Worker pool shared by preparation and per-class execution, created on
  /// first use (guarded by prepared_mu_).
  util::ThreadPool& Pool() const;

  const kb::KnowledgeBase* kb_;
  PipelineOptions options_;
  /// Created before kb_index_ so KB tokens intern first (declaration order
  /// matters: kb_index_ is initialized from dict_).
  std::shared_ptr<util::TokenDictionary> dict_;
  index::LabelIndex kb_index_;
  std::unique_ptr<matching::SchemaMatcher> schema_first_;
  std::unique_ptr<matching::SchemaMatcher> schema_refined_;
  std::map<kb::ClassId, rowcluster::RowClusterer> clusterers_;
  std::map<kb::ClassId, newdetect::NewDetector> detectors_;
  mutable std::mutex prepared_mu_;
  mutable std::unique_ptr<util::ThreadPool> pool_;
  mutable std::map<const webtable::TableCorpus*,
                   std::unique_ptr<webtable::PreparedCorpus>>
      prepared_;
};

/// Builds a label index over the instances of `kb` (doc = instance id).
/// Tokens intern into `dict` when given (pass the pipeline dictionary so
/// prepared corpora share the id space); a private one is created
/// otherwise.
index::LabelIndex BuildKbLabelIndex(
    const kb::KnowledgeBase& kb,
    std::shared_ptr<util::TokenDictionary> dict = nullptr);

}  // namespace ltee::pipeline

#endif  // LTEE_PIPELINE_PIPELINE_H_
