#include "pipeline/pipeline.h"

#include "obsv/memtrack.h"
#include "prov/ledger.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace ltee::pipeline {

index::LabelIndex BuildKbLabelIndex(const kb::KnowledgeBase& kb,
                                    std::shared_ptr<util::TokenDictionary> dict) {
  index::LabelIndex index(std::move(dict));
  for (const auto& instance : kb.instances()) {
    for (const auto& label : instance.labels) {
      index.Add(static_cast<uint32_t>(instance.id), label);
    }
  }
  index.Build();
  return index;
}

LteePipeline::LteePipeline(const kb::KnowledgeBase& kb,
                           PipelineOptions options)
    : kb_(&kb),
      options_(std::move(options)),
      dict_(std::make_shared<util::TokenDictionary>()),
      kb_index_(BuildKbLabelIndex(kb, dict_)) {
  schema_first_ = std::make_unique<matching::SchemaMatcher>(
      *kb_, kb_index_, options_.schema);
  schema_refined_ = std::make_unique<matching::SchemaMatcher>(
      *kb_, kb_index_, options_.schema);
}

util::ThreadPool& LteePipeline::Pool() const {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<util::ThreadPool>(
        options_.num_threads > 0 ? static_cast<size_t>(options_.num_threads)
                                 : 0);
  }
  return *pool_;
}

const webtable::PreparedCorpus& LteePipeline::Prepared(
    const webtable::TableCorpus& corpus) const {
  std::unique_lock<std::mutex> lock(prepared_mu_);
  auto it = prepared_.find(&corpus);
  if (it != prepared_.end()) {
    // Delta ingestion appends tables to an already-prepared corpus; extend
    // the prepared view in place (token ids interned so far stay stable).
    if (it->second->size() < corpus.size()) it->second->Append(&Pool());
    return *it->second;
  }
  util::ThreadPool& pool = Pool();
  auto built = std::make_unique<webtable::PreparedCorpus>(corpus, dict_, &pool);
  it = prepared_.emplace(&corpus, std::move(built)).first;
  return *it->second;
}

rowcluster::RowClusterer& LteePipeline::clusterer_for(kb::ClassId cls) {
  auto it = clusterers_.find(cls);
  if (it == clusterers_.end()) {
    it = clusterers_.emplace(cls, rowcluster::RowClusterer(options_.clustering))
             .first;
  }
  return it->second;
}

newdetect::NewDetector& LteePipeline::detector_for(kb::ClassId cls) {
  auto it = detectors_.find(cls);
  if (it == detectors_.end()) {
    it = detectors_
             .emplace(cls, newdetect::NewDetector(*kb_, kb_index_,
                                                  options_.detection))
             .first;
  }
  return it->second;
}

const rowcluster::RowClusterer& LteePipeline::clusterer_for(
    kb::ClassId cls) const {
  return clusterers_.at(cls);
}

const newdetect::NewDetector& LteePipeline::detector_for(
    kb::ClassId cls) const {
  return detectors_.at(cls);
}

ClassRunResult LteePipeline::RunClass(const webtable::TableCorpus& corpus,
                                      const matching::SchemaMapping& mapping,
                                      kb::ClassId cls) const {
  const webtable::PreparedCorpus& prepared = Prepared(corpus);
  util::trace::ScopedSpan span("pipeline.run_class");
  span.AddArg("cls", static_cast<long long>(cls));
  util::WallTimer class_timer;
  ClassRunResult result;
  result.cls = cls;

  util::WallTimer stage_timer;
  result.rows = rowcluster::BuildClassRowSet(prepared, mapping, cls, *kb_,
                                             kb_index_, options_.row_features);
  result.stage_seconds.push_back(
      {"build_rows", stage_timer.ElapsedSeconds()});

  stage_timer.Restart();
  const auto& clusterer = clusterers_.at(cls);
  auto clustering = clusterer.Cluster(result.rows);
  result.cluster_of_row = std::move(clustering.cluster_of);
  result.num_clusters = clustering.num_clusters;
  result.stage_seconds.push_back({"cluster", stage_timer.ElapsedSeconds()});

  stage_timer.Restart();
  result.entities = MakeEntityCreator().Create(result.rows,
                                               result.cluster_of_row, mapping,
                                               prepared);
  result.stage_seconds.push_back({"fuse", stage_timer.ElapsedSeconds()});

  stage_timer.Restart();
  result.detections = detectors_.at(cls).Detect(result.entities);
  result.stage_seconds.push_back({"detect", stage_timer.ElapsedSeconds()});

  result.total_seconds = class_timer.ElapsedSeconds();
  span.AddArg("rows", result.rows.rows.size());
  span.AddArg("clusters", static_cast<long long>(result.num_clusters));
  return result;
}

void LteePipeline::CollectFeedback(const std::vector<ClassRunResult>& classes,
                                   matching::RowInstanceMap* instances,
                                   matching::RowClusterMap* clusters) {
  std::vector<ClassFeedback> feedback;
  feedback.reserve(classes.size());
  for (const auto& result : classes) {
    feedback.push_back(ExtractClassFeedback(result));
  }
  MergeClassFeedback(feedback, instances, clusters);
}

ClassFeedback LteePipeline::ExtractClassFeedback(const ClassRunResult& result) {
  ClassFeedback feedback;
  feedback.cls = result.cls;
  feedback.num_clusters = result.num_clusters;
  for (size_t i = 0; i < result.rows.rows.size(); ++i) {
    if (result.cluster_of_row[i] >= 0) {
      feedback.row_clusters.emplace_back(result.rows.rows[i].ref,
                                         result.cluster_of_row[i]);
    }
  }
  for (size_t e = 0; e < result.entities.size(); ++e) {
    const auto& detection = result.detections[e];
    if (!detection.is_new && detection.instance != kb::kInvalidInstance) {
      for (const auto& ref : result.entities[e].rows) {
        feedback.row_instances.emplace_back(ref, detection.instance);
      }
    }
  }
  return feedback;
}

void LteePipeline::MergeClassFeedback(
    const std::vector<ClassFeedback>& classes,
    matching::RowInstanceMap* instances, matching::RowClusterMap* clusters) {
  int offset = 0;
  for (const ClassFeedback& feedback : classes) {
    for (const auto& [ref, cluster] : feedback.row_clusters) {
      (*clusters)[ref] = offset + cluster;
    }
    for (const auto& [ref, instance] : feedback.row_instances) {
      (*instances)[ref] = instance;
    }
    offset += feedback.num_clusters;
  }
}

PipelineRunResult LteePipeline::Run(
    const webtable::TableCorpus& corpus,
    const std::vector<kb::ClassId>& classes) const {
  StageContext ctx;
  ctx.corpus = &corpus;
  ctx.classes = classes;
  ctx.scope = ClassScope::All();
  return RunScoped(ctx);
}

PipelineRunResult LteePipeline::RunScoped(const StageContext& ctx) const {
  const std::vector<kb::ClassId>& classes = ctx.classes;
  bool delta = ctx.has_baseline();
  if (delta) {
    const size_t iterations = static_cast<size_t>(options_.iterations);
    bool shape_ok = ctx.baseline.mappings->size() == iterations &&
                    ctx.baseline.feedback->size() == iterations;
    for (size_t i = 0; shape_ok && i < iterations; ++i) {
      shape_ok = (*ctx.baseline.feedback)[i].size() == classes.size();
    }
    if (!shape_ok) {
      LTEE_LOG(kWarning) << "RunScoped: baseline shape does not match the "
                            "configured iterations/classes; running full "
                            "scope without reuse";
      delta = false;
    }
  }

  PipelineRunResult out;
  matching::RowInstanceMap instances;
  matching::RowClusterMap clusters;

  util::trace::ScopedSpan run_span("pipeline.run");
  run_span.AddArg("classes", classes.size());
  run_span.AddArg("iterations", static_cast<long long>(options_.iterations));
  run_span.AddArg("delta", delta ? "true" : "false");
  util::WallTimer run_timer;
  util::WallTimer stage_timer;

  // Heap growth per stage boundary: the delta of process-wide tracked
  // live bytes (obsv::memtrack) since the previous boundary. All zeros
  // when tracking is off. Signed wrap-around subtraction keeps a
  // freed-more-than-allocated stage negative.
  uint64_t live_bytes_mark = obsv::GetMemtrackTotals().live_bytes;
  auto stage_bytes_delta = [&live_bytes_mark]() {
    const uint64_t now = obsv::GetMemtrackTotals().live_bytes;
    const long long delta = static_cast<long long>(now - live_bytes_mark);
    live_bytes_mark = now;
    return delta;
  };

  // Progress gauges make a long run watchable through the status server:
  // `stage` counts completed stage boundaries of this run, `classes_done`
  // ticks inside each parallel sweep. Hoisted once; the updates are one
  // relaxed store each.
  util::Gauge& stage_gauge = util::Metrics().GetGauge("ltee.pipeline.stage");
  util::Gauge& iteration_gauge =
      util::Metrics().GetGauge("ltee.pipeline.iteration");
  util::Gauge& classes_done_gauge =
      util::Metrics().GetGauge("ltee.pipeline.classes_done");
  util::Gauge& classes_total_gauge =
      util::Metrics().GetGauge("ltee.pipeline.classes_total");
  classes_total_gauge.Set(static_cast<double>(classes.size()));
  double stage_ordinal = 0.0;
  stage_gauge.Set(stage_ordinal);
  iteration_gauge.Set(0.0);
  classes_done_gauge.Set(0.0);

  // Prepares new tables in place when the corpus grew since the last run.
  const webtable::PreparedCorpus& prepared = Prepared(*ctx.corpus);
  out.report.stages.push_back(
      {"prepare_corpus", stage_timer.ElapsedSeconds(), stage_bytes_delta()});
  stage_gauge.Set(++stage_ordinal);

  for (int iteration = 0; iteration < options_.iterations; ++iteration) {
    const std::string iter_suffix = ".iter" + std::to_string(iteration + 1);
    iteration_gauge.Set(static_cast<double>(iteration + 1));
    // Stamp every provenance event of this iteration; post-run stages
    // (dedup, slot filling, KB update) inherit the final iteration.
    prov::SetIteration(iteration + 1);
    matching::SchemaMapping mapping;
    stage_timer.Restart();
    {
      util::trace::ScopedSpan match_span("pipeline.schema_match");
      match_span.AddArg("iteration", static_cast<long long>(iteration + 1));
      if (iteration == 0) {
        mapping = schema_first_->Match(prepared);
      } else {
        matching::MatcherFeedback feedback;
        feedback.row_instances = &instances;
        feedback.row_clusters = &clusters;
        feedback.preliminary = &out.mappings.back();
        mapping = schema_refined_->Match(prepared, feedback);
      }
    }
    out.report.stages.push_back({"schema_match" + iter_suffix,
                                 stage_timer.ElapsedSeconds(),
                                 stage_bytes_delta()});
    stage_gauge.Set(++stage_ordinal);

    // The sweep scope: everything for a full run; for a delta run the
    // initial scope plus every class whose mapping drifted from the
    // baseline this iteration (new tables always count as drift).
    ClassScope sweep = ctx.scope;
    if (delta) {
      const MappingDiff diff =
          DiffMappings((*ctx.baseline.mappings)[iteration], mapping);
      for (kb::ClassId cls : diff.classes) sweep.Add(cls);
    }
    std::vector<char> swept(classes.size(), 0);
    size_t num_swept = 0;
    for (size_t i = 0; i < classes.size(); ++i) {
      swept[i] = sweep.contains(classes[i]) ? 1 : 0;
      num_swept += swept[i];
    }
    classes_total_gauge.Set(static_cast<double>(num_swept));

    // Classes are independent given the mapping; run the in-scope ones on
    // the pool and collect into class order so feedback merging stays
    // deterministic.
    stage_timer.Restart();
    classes_done_gauge.Set(0.0);
    std::vector<ClassRunResult> class_results(classes.size());
    {
      util::trace::ScopedSpan classes_span("pipeline.class_sweep");
      classes_span.AddArg("iteration", static_cast<long long>(iteration + 1));
      classes_span.AddArg("in_scope", num_swept);
      util::ThreadPool* pool = nullptr;
      {
        std::unique_lock<std::mutex> lock(prepared_mu_);
        pool = &Pool();
      }
      pool->ParallelFor(classes.size(), [&](size_t i) {
        if (swept[i] == 0) return;
        class_results[i] = RunClass(*ctx.corpus, mapping, classes[i]);
        classes_done_gauge.Add(1.0);
      });
    }
    out.report.stages.push_back({"class_sweep" + iter_suffix,
                                 stage_timer.ElapsedSeconds(),
                                 stage_bytes_delta()});
    stage_gauge.Set(++stage_ordinal);
    for (size_t i = 0; i < classes.size(); ++i) {
      if (swept[i] == 0) continue;
      const ClassRunResult& result = class_results[i];
      ClassStageReport report;
      report.cls = result.cls;
      report.iteration = iteration + 1;
      report.stages = result.stage_seconds;
      report.total_seconds = result.total_seconds;
      out.report.classes.push_back(std::move(report));
    }

    // Feedback: freshly extracted for swept classes, replayed from the
    // baseline for the rest. Merging happens in run-class order either
    // way, so cluster-id offsets come out identical to a full run.
    stage_timer.Restart();
    std::vector<ClassFeedback> iteration_feedback(classes.size());
    for (size_t i = 0; i < classes.size(); ++i) {
      if (swept[i] != 0) {
        iteration_feedback[i] = ExtractClassFeedback(class_results[i]);
      } else {
        iteration_feedback[i] = (*ctx.baseline.feedback)[iteration][i];
      }
    }
    instances.clear();
    clusters.clear();
    MergeClassFeedback(iteration_feedback, &instances, &clusters);
    out.feedback.push_back(std::move(iteration_feedback));
    out.report.stages.push_back({"collect_feedback" + iter_suffix,
                                 stage_timer.ElapsedSeconds(),
                                 stage_bytes_delta()});
    stage_gauge.Set(++stage_ordinal);

    out.mappings.push_back(std::move(mapping));
    if (iteration == options_.iterations - 1) {
      for (size_t i = 0; i < classes.size(); ++i) {
        if (swept[i] == 0) continue;
        out.recomputed.push_back(classes[i]);
        out.classes.push_back(std::move(class_results[i]));
      }
    }
    LTEE_LOG(kDebug) << "pipeline iteration " << (iteration + 1) << " done";
  }
  out.report.total_seconds = run_timer.ElapsedSeconds();
  out.report.peak_rss_bytes = obsv::ReadPeakRssBytes();
  out.report.live_bytes_end = obsv::GetMemtrackTotals().live_bytes;
  prov::RefreshQualityGauges();
  out.report.metrics = util::Metrics().Snapshot();
  return out;
}

}  // namespace ltee::pipeline
