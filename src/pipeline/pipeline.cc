#include "pipeline/pipeline.h"

#include "prov/ledger.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace ltee::pipeline {

index::LabelIndex BuildKbLabelIndex(const kb::KnowledgeBase& kb,
                                    std::shared_ptr<util::TokenDictionary> dict) {
  index::LabelIndex index(std::move(dict));
  for (const auto& instance : kb.instances()) {
    for (const auto& label : instance.labels) {
      index.Add(static_cast<uint32_t>(instance.id), label);
    }
  }
  index.Build();
  return index;
}

LteePipeline::LteePipeline(const kb::KnowledgeBase& kb,
                           PipelineOptions options)
    : kb_(&kb),
      options_(std::move(options)),
      dict_(std::make_shared<util::TokenDictionary>()),
      kb_index_(BuildKbLabelIndex(kb, dict_)) {
  schema_first_ = std::make_unique<matching::SchemaMatcher>(
      *kb_, kb_index_, options_.schema);
  schema_refined_ = std::make_unique<matching::SchemaMatcher>(
      *kb_, kb_index_, options_.schema);
}

util::ThreadPool& LteePipeline::Pool() const {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<util::ThreadPool>(
        options_.num_threads > 0 ? static_cast<size_t>(options_.num_threads)
                                 : 0);
  }
  return *pool_;
}

const webtable::PreparedCorpus& LteePipeline::Prepared(
    const webtable::TableCorpus& corpus) const {
  std::unique_lock<std::mutex> lock(prepared_mu_);
  auto it = prepared_.find(&corpus);
  if (it != prepared_.end()) return *it->second;
  util::ThreadPool& pool = Pool();
  auto built = std::make_unique<webtable::PreparedCorpus>(corpus, dict_, &pool);
  it = prepared_.emplace(&corpus, std::move(built)).first;
  return *it->second;
}

rowcluster::RowClusterer& LteePipeline::clusterer_for(kb::ClassId cls) {
  auto it = clusterers_.find(cls);
  if (it == clusterers_.end()) {
    it = clusterers_.emplace(cls, rowcluster::RowClusterer(options_.clustering))
             .first;
  }
  return it->second;
}

newdetect::NewDetector& LteePipeline::detector_for(kb::ClassId cls) {
  auto it = detectors_.find(cls);
  if (it == detectors_.end()) {
    it = detectors_
             .emplace(cls, newdetect::NewDetector(*kb_, kb_index_,
                                                  options_.detection))
             .first;
  }
  return it->second;
}

const rowcluster::RowClusterer& LteePipeline::clusterer_for(
    kb::ClassId cls) const {
  return clusterers_.at(cls);
}

const newdetect::NewDetector& LteePipeline::detector_for(
    kb::ClassId cls) const {
  return detectors_.at(cls);
}

ClassRunResult LteePipeline::RunClass(const webtable::TableCorpus& corpus,
                                      const matching::SchemaMapping& mapping,
                                      kb::ClassId cls) const {
  const webtable::PreparedCorpus& prepared = Prepared(corpus);
  util::trace::ScopedSpan span("pipeline.run_class");
  span.AddArg("cls", static_cast<long long>(cls));
  util::WallTimer class_timer;
  ClassRunResult result;
  result.cls = cls;

  util::WallTimer stage_timer;
  result.rows = rowcluster::BuildClassRowSet(prepared, mapping, cls, *kb_,
                                             kb_index_, options_.row_features);
  result.stage_seconds.push_back(
      {"build_rows", stage_timer.ElapsedSeconds()});

  stage_timer.Restart();
  const auto& clusterer = clusterers_.at(cls);
  auto clustering = clusterer.Cluster(result.rows);
  result.cluster_of_row = std::move(clustering.cluster_of);
  result.num_clusters = clustering.num_clusters;
  result.stage_seconds.push_back({"cluster", stage_timer.ElapsedSeconds()});

  stage_timer.Restart();
  result.entities = MakeEntityCreator().Create(result.rows,
                                               result.cluster_of_row, mapping,
                                               prepared);
  result.stage_seconds.push_back({"fuse", stage_timer.ElapsedSeconds()});

  stage_timer.Restart();
  result.detections = detectors_.at(cls).Detect(result.entities);
  result.stage_seconds.push_back({"detect", stage_timer.ElapsedSeconds()});

  result.total_seconds = class_timer.ElapsedSeconds();
  span.AddArg("rows", result.rows.rows.size());
  span.AddArg("clusters", static_cast<long long>(result.num_clusters));
  return result;
}

void LteePipeline::CollectFeedback(const std::vector<ClassRunResult>& classes,
                                   matching::RowInstanceMap* instances,
                                   matching::RowClusterMap* clusters) {
  int offset = 0;
  for (const auto& result : classes) {
    for (size_t i = 0; i < result.rows.rows.size(); ++i) {
      const auto& ref = result.rows.rows[i].ref;
      if (result.cluster_of_row[i] >= 0) {
        (*clusters)[ref] = offset + result.cluster_of_row[i];
      }
    }
    for (size_t e = 0; e < result.entities.size(); ++e) {
      const auto& detection = result.detections[e];
      if (!detection.is_new && detection.instance != kb::kInvalidInstance) {
        for (const auto& ref : result.entities[e].rows) {
          (*instances)[ref] = detection.instance;
        }
      }
    }
    offset += result.num_clusters;
  }
}

PipelineRunResult LteePipeline::Run(
    const webtable::TableCorpus& corpus,
    const std::vector<kb::ClassId>& classes) const {
  PipelineRunResult out;
  matching::RowInstanceMap instances;
  matching::RowClusterMap clusters;

  util::trace::ScopedSpan run_span("pipeline.run");
  run_span.AddArg("classes", classes.size());
  run_span.AddArg("iterations", static_cast<long long>(options_.iterations));
  util::WallTimer run_timer;
  util::WallTimer stage_timer;

  // Progress gauges make a long run watchable through the status server:
  // `stage` counts completed stage boundaries of this run, `classes_done`
  // ticks inside each parallel sweep. Hoisted once; the updates are one
  // relaxed store each.
  util::Gauge& stage_gauge = util::Metrics().GetGauge("ltee.pipeline.stage");
  util::Gauge& iteration_gauge =
      util::Metrics().GetGauge("ltee.pipeline.iteration");
  util::Gauge& classes_done_gauge =
      util::Metrics().GetGauge("ltee.pipeline.classes_done");
  util::Metrics()
      .GetGauge("ltee.pipeline.classes_total")
      .Set(static_cast<double>(classes.size()));
  double stage_ordinal = 0.0;
  stage_gauge.Set(stage_ordinal);
  iteration_gauge.Set(0.0);
  classes_done_gauge.Set(0.0);

  const webtable::PreparedCorpus& prepared = Prepared(corpus);
  out.report.stages.push_back(
      {"prepare_corpus", stage_timer.ElapsedSeconds()});
  stage_gauge.Set(++stage_ordinal);

  for (int iteration = 0; iteration < options_.iterations; ++iteration) {
    const std::string iter_suffix = ".iter" + std::to_string(iteration + 1);
    iteration_gauge.Set(static_cast<double>(iteration + 1));
    // Stamp every provenance event of this iteration; post-run stages
    // (dedup, slot filling, KB update) inherit the final iteration.
    prov::SetIteration(iteration + 1);
    matching::SchemaMapping mapping;
    stage_timer.Restart();
    {
      util::trace::ScopedSpan match_span("pipeline.schema_match");
      match_span.AddArg("iteration", static_cast<long long>(iteration + 1));
      if (iteration == 0) {
        mapping = schema_first_->Match(prepared);
      } else {
        matching::MatcherFeedback feedback;
        feedback.row_instances = &instances;
        feedback.row_clusters = &clusters;
        feedback.preliminary = &out.mappings.back();
        mapping = schema_refined_->Match(prepared, feedback);
      }
    }
    out.report.stages.push_back(
        {"schema_match" + iter_suffix, stage_timer.ElapsedSeconds()});
    stage_gauge.Set(++stage_ordinal);

    // Classes are independent given the mapping; run them on the pool and
    // collect into class order so feedback merging stays deterministic.
    stage_timer.Restart();
    classes_done_gauge.Set(0.0);
    std::vector<ClassRunResult> class_results(classes.size());
    {
      util::trace::ScopedSpan classes_span("pipeline.class_sweep");
      classes_span.AddArg("iteration", static_cast<long long>(iteration + 1));
      util::ThreadPool* pool = nullptr;
      {
        std::unique_lock<std::mutex> lock(prepared_mu_);
        pool = &Pool();
      }
      pool->ParallelFor(classes.size(), [&](size_t i) {
        class_results[i] = RunClass(corpus, mapping, classes[i]);
        classes_done_gauge.Add(1.0);
      });
    }
    out.report.stages.push_back(
        {"class_sweep" + iter_suffix, stage_timer.ElapsedSeconds()});
    stage_gauge.Set(++stage_ordinal);
    for (const ClassRunResult& result : class_results) {
      ClassStageReport report;
      report.cls = result.cls;
      report.iteration = iteration + 1;
      report.stages = result.stage_seconds;
      report.total_seconds = result.total_seconds;
      out.report.classes.push_back(std::move(report));
    }

    stage_timer.Restart();
    instances.clear();
    clusters.clear();
    CollectFeedback(class_results, &instances, &clusters);
    out.report.stages.push_back(
        {"collect_feedback" + iter_suffix, stage_timer.ElapsedSeconds()});
    stage_gauge.Set(++stage_ordinal);

    out.mappings.push_back(std::move(mapping));
    if (iteration == options_.iterations - 1) {
      out.classes = std::move(class_results);
    }
    LTEE_LOG(kDebug) << "pipeline iteration " << (iteration + 1) << " done";
  }
  out.report.total_seconds = run_timer.ElapsedSeconds();
  prov::RefreshQualityGauges();
  out.report.metrics = util::Metrics().Snapshot();
  return out;
}

}  // namespace ltee::pipeline
