#ifndef LTEE_PIPELINE_DELTA_H_
#define LTEE_PIPELINE_DELTA_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "kb/applier.h"
#include "pipeline/kb_update.h"
#include "pipeline/pipeline.h"
#include "webtable/web_table.h"

namespace ltee::pipeline {

/// Everything a later delta ingest needs to continue a finished run
/// without recomputing unaffected classes: the run configuration
/// fingerprint (training seed, dedup, min-facts — a delta run must
/// reproduce them exactly), the last published snapshot version, the run
/// class order, per-iteration mappings and per-class feedback, and the
/// typed changeset the run staged against the immutable base KB.
struct DeltaState {
  uint64_t seed = 7;
  bool dedup = false;
  size_t min_facts = 0;
  uint64_t snapshot_version = 1;
  std::vector<kb::ClassId> classes;
  std::vector<matching::SchemaMapping> mappings;
  std::vector<std::vector<ClassFeedback>> feedback;
  kb::ChangeSet changes;
};

/// Line-based TSV serialization. Doubles are printed with %.17g, so a
/// save/load round trip is bit-exact — required for the mapping diff to
/// compare a reloaded baseline against a fresh run without false drift.
void SaveDeltaState(const DeltaState& state, std::ostream& out);
std::optional<DeltaState> LoadDeltaState(std::istream& in);

/// Options of the per-class post-run staging pass (the batch CLI loop and
/// DeltaIngest share it, so batch and delta cannot diverge).
struct StageClassOptions {
  bool dedup = false;
  KbUpdateOptions update;
  /// When non-null, accepted new entities are exported as N-Triples here.
  std::ostream* ntriples = nullptr;
  std::string uri_prefix = "http://ltee.example.org/";
};

/// One class result staged into a typed ClassChange.
struct StagedClassChange {
  kb::ClassChange change;
  size_t dedup_merges = 0;
  /// Slot-fill proposal statistics (confirmations/conflicts).
  size_t confirmations = 0;
  size_t conflicts = 0;
};

/// Post-run processing of one class result: optional dedup -> N-Triples
/// export -> slot filling against the (immutable) base KB -> min-facts
/// filter. Produces the ClassChange a kb::Applier stages; nothing mutates
/// the KB here.
StagedClassChange StageClassRun(const kb::KnowledgeBase& kb,
                                const ClassRunResult& class_run,
                                const StageClassOptions& options = {});

/// Result of one delta ingest.
struct DeltaIngestResult {
  size_t new_tables = 0;
  /// Classes the scoped run recomputed, in run order.
  std::vector<kb::ClassId> recomputed;
  /// The scoped run itself (classes holds recomputed classes only).
  PipelineRunResult run;
};

/// Ingests a batch of new tables incrementally: appends them to `corpus`
/// (the prepared view extends in place, token ids stay stable), runs the
/// scoped pipeline against the baseline in `state`, restages the changeset
/// entries of every recomputed class, and updates `state` (mappings,
/// feedback, changeset) in place. The KB is NOT mutated — apply
/// `state->changes` through a kb::Applier to materialize the new version,
/// then publish a serve::Snapshot from it. By construction the updated
/// changeset equals the one a full run over the grown corpus would stage,
/// so full(A+B) and full(A)+delta(B) converge to identical KBs.
DeltaIngestResult DeltaIngest(const LteePipeline& pipe,
                              webtable::TableCorpus* corpus,
                              std::vector<webtable::WebTable> batch,
                              DeltaState* state);

}  // namespace ltee::pipeline

#endif  // LTEE_PIPELINE_DELTA_H_
