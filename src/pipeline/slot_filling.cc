#include "pipeline/slot_filling.h"

#include "kb/applier.h"
#include "prov/ledger.h"
#include "types/type_similarity.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ltee::pipeline {

SlotFillingResult FillSlots(
    const kb::KnowledgeBase& kb,
    const std::vector<fusion::CreatedEntity>& entities,
    const std::vector<newdetect::Detection>& detections) {
  util::trace::ScopedSpan span("pipeline.slot_filling");
  span.AddArg("entities", entities.size());
  SlotFillingResult result;
  const types::TypeSimilarityOptions sim_options;
  const bool prov_enabled = prov::IsEnabled();
  for (size_t e = 0; e < entities.size(); ++e) {
    const newdetect::Detection& detection = detections[e];
    if (detection.is_new || detection.instance == kb::kInvalidInstance) {
      continue;
    }
    for (const auto& fact : entities[e].facts) {
      const types::Value* existing =
          kb.FactOf(detection.instance, fact.property);
      const char* reason = nullptr;
      bool accepted = false;
      if (existing == nullptr) {
        result.new_facts.push_back({detection.instance, fact.property,
                                    fact.value, static_cast<int>(e)});
        reason = "slot_fill";
        accepted = true;
      } else if (types::ValuesEqual(fact.value, *existing, sim_options)) {
        result.confirmations += 1;
        reason = "slot_confirmed";
        accepted = true;
      } else {
        result.conflicts += 1;
        reason = "slot_conflict";
      }
      if (prov_enabled) {
        prov::KbUpdateDecision decision;
        decision.cls = entities[e].cls;
        decision.cluster_id = entities[e].cluster_id;
        const auto& labels = kb.instance(detection.instance).labels;
        if (!labels.empty()) decision.subject = labels.front();
        decision.property = fact.property;
        decision.property_name = kb.property(fact.property).name;
        decision.value = fact.value.ToString();
        decision.accepted = accepted;
        decision.reason = reason;
        prov::Record(std::move(decision));
      }
    }
  }
  span.AddArg("new_facts", result.new_facts.size());
  span.AddArg("conflicts", static_cast<long long>(result.conflicts));
  util::Metrics().GetCounter("ltee.slotfill.new_facts")
      .Increment(result.new_facts.size());
  util::Metrics().GetCounter("ltee.slotfill.confirmations")
      .Increment(static_cast<uint64_t>(result.confirmations));
  util::Metrics().GetCounter("ltee.slotfill.conflicts")
      .Increment(static_cast<uint64_t>(result.conflicts));
  return result;
}

size_t ApplySlotFills(kb::KnowledgeBase* kb,
                      const std::vector<SlotFill>& fills) {
  // Routed through the typed changeset so every KB write shares one code
  // path; apply-time skip-occupied matches the legacy behavior exactly.
  kb::ClassChange change;
  for (const auto& fill : fills) {
    change.fact_adds.push_back(
        kb::FactAdd{fill.instance, fill.property, fill.value});
  }
  kb::ChangeSet changes;
  changes.classes.push_back(std::move(change));
  return kb::ApplyChangeSet(kb, changes).slot_fills;
}

}  // namespace ltee::pipeline
