#ifndef LTEE_PIPELINE_EXPERIMENT_H_
#define LTEE_PIPELINE_EXPERIMENT_H_

#include <map>
#include <memory>
#include <vector>

#include "eval/clustering_eval.h"
#include "eval/gold_standard.h"
#include "eval/pipeline_eval.h"
#include "pipeline/pipeline.h"
#include "util/random.h"

namespace ltee::pipeline {

/// Cross-validated gold-standard experiment driver: reproduces the paper's
/// Sections 3 and 4 evaluations (Tables 6-10) and the Section 6 ranked
/// comparison. Folds are assigned per class at cluster level, stratified
/// by new/existing with homonym groups kept within one fold (Section 2.3).
class GoldExperiment {
 public:
  GoldExperiment(const kb::KnowledgeBase& kb,
                 const webtable::TableCorpus& gs_corpus,
                 std::vector<eval::GoldStandard> gold,
                 PipelineOptions options = {}, int num_folds = 3,
                 uint64_t seed = 7);
  ~GoldExperiment();

  int num_classes() const { return static_cast<int>(gold_.size()); }
  int folds() const { return num_folds_; }
  const eval::GoldStandard& gold(int class_index) const {
    return gold_[class_index];
  }
  const kb::KnowledgeBase& knowledge_base() const { return *kb_; }

  struct PrfMetrics {
    double precision = 0.0;
    double recall = 0.0;
    double f1 = 0.0;
  };
  /// Table 6: attribute-to-property matching performance after 1, 2, ...,
  /// `max_iterations` pipeline iterations, averaged over folds.
  std::vector<PrfMetrics> SchemaMatchingByIteration(int max_iterations = 3);

  /// Average learned matcher weights of the refined (iteration>=2) schema
  /// matcher, per matcher id, averaged over folds (Section 3.1 weights
  /// discussion). Valid after SchemaMatchingByIteration or any end-to-end
  /// call.
  std::vector<double> AverageSchemaWeights();

  struct ClusteringMetrics {
    double penalized_precision = 0.0;
    double average_recall = 0.0;
    double f1 = 0.0;
    std::vector<double> importances;  // per enabled metric
  };
  /// Table 7 rows and the Section 3.2 aggregation/blocking ablations:
  /// trains a row clusterer with the given configuration per class and
  /// fold, clusters the test rows, and averages the Hassanzadeh metrics.
  ClusteringMetrics RowClustering(const std::vector<bool>& metrics,
                                  ml::AggregationKind aggregation,
                                  bool blocking = true);

  struct DetectionMetrics {
    double accuracy = 0.0;
    double f1_existing = 0.0;
    double f1_new = 0.0;
    std::vector<double> importances;
  };
  /// Table 8 rows: trains a new detector with the given metric mask per
  /// class and fold on gold-cluster entities and evaluates on test folds.
  DetectionMetrics NewDetection(const std::vector<bool>& metrics);

  /// Table 9: new-instances-found P/R/F1 for one class, with either the
  /// gold clustering (GS) or the system clustering (ALL). New detection is
  /// always the full aggregated method.
  eval::InstancesFoundResult NewInstancesFound(int class_index,
                                               bool gold_clustering);

  /// Table 10: facts-found F1 for one class under the chosen component
  /// sources and fusion scoring approach.
  eval::FactsFoundResult FactsFound(int class_index, bool gold_clustering,
                                    bool gold_detection,
                                    fusion::ScoringApproach scoring);

  /// Section 6: ranked evaluation of new entities pooled over classes and
  /// folds, ranked by distance to the closest existing instance.
  eval::RankedEvalResult RankedNewEntities(size_t cutoff = 256);

  /// Section 6 (identity resolution comparison): F1 and accuracy of
  /// matching gold *existing* clusters to their KB instances using the
  /// trained new detection.
  struct InstanceMatchMetrics {
    double f1 = 0.0;
    double accuracy = 0.0;
  };
  InstanceMatchMetrics ExistingInstanceMatching();

 private:
  struct ClassFoldState;
  struct FoldState;

  FoldState& Fold(int fold);
  /// Builds (and caches) the end-to-end pipeline run of a fold.
  const PipelineRunResult& EndToEndRun(int fold);

  /// Creates entities for the given gold clusters from `rows` (rows are
  /// assigned to clusters via the gold annotation). Returns entities
  /// parallel to `cluster_indices` (entities without rows are empty).
  std::vector<fusion::CreatedEntity> GoldClusterEntities(
      const rowcluster::ClassRowSet& rows, const eval::GoldStandard& gold,
      const std::vector<int>& cluster_indices,
      const matching::SchemaMapping& mapping,
      const fusion::EntityCreator& creator,
      const webtable::PreparedCorpus& prepared) const;

  const kb::KnowledgeBase* kb_;
  const webtable::TableCorpus* gs_corpus_;
  std::vector<eval::GoldStandard> gold_;
  PipelineOptions options_;
  int num_folds_;
  uint64_t seed_;
  /// fold_of_cluster_[class][cluster] in [0, num_folds).
  std::vector<std::vector<int>> fold_of_cluster_;
  std::vector<std::unique_ptr<FoldState>> fold_states_;
};

}  // namespace ltee::pipeline

#endif  // LTEE_PIPELINE_EXPERIMENT_H_
