#ifndef LTEE_PIPELINE_DEDUP_H_
#define LTEE_PIPELINE_DEDUP_H_

#include <vector>

#include "fusion/entity.h"
#include "newdetect/new_detector.h"
#include "types/type_similarity.h"

namespace ltee::pipeline {

/// Options of the post-clustering entity deduplication pass (proposed in
/// the paper's Section 5 for the Song class: "we need to implement more
/// sophisticated row clustering methods or, alternatively, perform
/// deduplication after clustering").
struct DedupOptions {
  /// Minimum Monge-Elkan label similarity for two entities to be
  /// duplicate candidates.
  double label_threshold = 0.95;
  /// Fraction of overlapping facts that must agree.
  double fact_agreement = 0.75;
  /// Entities with no overlapping facts: merge only on exact-equal labels.
  bool merge_without_fact_overlap = false;
  types::TypeSimilarityOptions similarity;
};

/// Result of a dedup pass: the merged entity list (facts re-fused from the
/// union of rows is approximated by keeping the larger entity's facts and
/// adopting missing ones from the absorbed entity) and the merge count.
struct DedupResult {
  std::vector<fusion::CreatedEntity> entities;
  std::vector<newdetect::Detection> detections;
  size_t merges = 0;
};

/// Merges created entities that describe the same instance: near-identical
/// labels and agreeing overlapping facts. Detections are carried over from
/// the surviving entity (preferring an existing-match over new).
DedupResult DeduplicateEntities(
    std::vector<fusion::CreatedEntity> entities,
    std::vector<newdetect::Detection> detections,
    const DedupOptions& options = {});

}  // namespace ltee::pipeline

#endif  // LTEE_PIPELINE_DEDUP_H_
