#include "pipeline/delta.h"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <string>
#include <utility>

#include "pipeline/dedup.h"
#include "pipeline/slot_filling.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ltee::pipeline {

namespace {

constexpr char kHeaderTag[] = "DSTATE1";

/// %.17g survives a text round trip bit-exactly for every finite double, so
/// a reloaded baseline mapping compares equal (operator==) to the in-memory
/// one that produced it — the mapping diff must never see false drift.
std::string FormatDouble(double d) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

bool ParseI64(const std::string& s, long long* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Sequential line reader with a one-line error context.
class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(in) {}

  bool Next(std::vector<std::string>* fields) {
    std::string line;
    if (!std::getline(in_, line)) return false;
    ++line_number_;
    *fields = SplitFields(line);
    return true;
  }

  int line_number() const { return line_number_; }

 private:
  std::istream& in_;
  int line_number_ = 0;
};

void WriteMapping(const matching::SchemaMapping& mapping, int iteration,
                  std::ostream& out) {
  out << "I\t" << iteration << '\t' << mapping.tables.size() << '\n';
  for (const matching::TableMapping& tm : mapping.tables) {
    out << "T\t" << tm.table << '\t' << tm.label_column << '\t' << tm.cls
        << '\t' << FormatDouble(tm.class_score) << '\t' << tm.columns.size()
        << '\t' << tm.row_instance.size() << '\n';
    for (const matching::ColumnMatch& col : tm.columns) {
      out << "A\t" << static_cast<int>(col.detected) << '\t' << col.property
          << '\t' << FormatDouble(col.score) << '\n';
    }
    if (!tm.row_instance.empty()) {
      out << 'R';
      for (kb::InstanceId inst : tm.row_instance) out << '\t' << inst;
      out << '\n';
    }
  }
}

void WriteFeedback(const ClassFeedback& fb, int iteration, int k,
                   std::ostream& out) {
  out << "F\t" << iteration << '\t' << k << '\t' << fb.cls << '\t'
      << fb.num_clusters << '\t' << fb.row_clusters.size() << '\t'
      << fb.row_instances.size() << '\n';
  for (const auto& [row, cluster] : fb.row_clusters) {
    out << "FC\t" << row.table << '\t' << row.row << '\t' << cluster << '\n';
  }
  for (const auto& [row, instance] : fb.row_instances) {
    out << "FR\t" << row.table << '\t' << row.row << '\t' << instance << '\n';
  }
}

#define LTEE_DELTA_PARSE_FAIL(reader, what)                              \
  do {                                                                   \
    LTEE_LOG(kError) << "delta state parse error at line "               \
                     << (reader).line_number() << ": " << (what);        \
    return std::nullopt;                                                 \
  } while (0)

std::optional<matching::SchemaMapping> ReadMapping(LineReader& reader,
                                                   int expected_iteration) {
  std::vector<std::string> f;
  if (!reader.Next(&f) || f.size() != 3 || f[0] != "I") {
    LTEE_DELTA_PARSE_FAIL(reader, "expected I record");
  }
  long long iter = 0, num_tables = 0;
  if (!ParseI64(f[1], &iter) || !ParseI64(f[2], &num_tables) ||
      iter != expected_iteration || num_tables < 0) {
    LTEE_DELTA_PARSE_FAIL(reader, "bad I record");
  }
  matching::SchemaMapping mapping;
  mapping.tables.reserve(static_cast<size_t>(num_tables));
  for (long long t = 0; t < num_tables; ++t) {
    if (!reader.Next(&f) || f.size() != 7 || f[0] != "T") {
      LTEE_DELTA_PARSE_FAIL(reader, "expected T record");
    }
    long long table = 0, label_column = 0, cls = 0, ncols = 0, nrows = 0;
    double class_score = 0.0;
    if (!ParseI64(f[1], &table) || !ParseI64(f[2], &label_column) ||
        !ParseI64(f[3], &cls) || !ParseDouble(f[4], &class_score) ||
        !ParseI64(f[5], &ncols) || !ParseI64(f[6], &nrows) || ncols < 0 ||
        nrows < 0) {
      LTEE_DELTA_PARSE_FAIL(reader, "bad T record");
    }
    matching::TableMapping tm;
    tm.table = static_cast<webtable::TableId>(table);
    tm.label_column = static_cast<int>(label_column);
    tm.cls = static_cast<kb::ClassId>(cls);
    tm.class_score = class_score;
    tm.columns.reserve(static_cast<size_t>(ncols));
    for (long long c = 0; c < ncols; ++c) {
      if (!reader.Next(&f) || f.size() != 4 || f[0] != "A") {
        LTEE_DELTA_PARSE_FAIL(reader, "expected A record");
      }
      long long detected = 0, property = 0;
      double score = 0.0;
      if (!ParseI64(f[1], &detected) || !ParseI64(f[2], &property) ||
          !ParseDouble(f[3], &score) || detected < 0 || detected > 2) {
        LTEE_DELTA_PARSE_FAIL(reader, "bad A record");
      }
      matching::ColumnMatch col;
      col.detected = static_cast<types::DetectedType>(detected);
      col.property = static_cast<kb::PropertyId>(property);
      col.score = score;
      tm.columns.push_back(col);
    }
    if (nrows > 0) {
      if (!reader.Next(&f) ||
          f.size() != static_cast<size_t>(nrows) + 1 || f[0] != "R") {
        LTEE_DELTA_PARSE_FAIL(reader, "expected R record");
      }
      tm.row_instance.reserve(static_cast<size_t>(nrows));
      for (long long r = 0; r < nrows; ++r) {
        long long inst = 0;
        if (!ParseI64(f[static_cast<size_t>(r) + 1], &inst)) {
          LTEE_DELTA_PARSE_FAIL(reader, "bad R record");
        }
        tm.row_instance.push_back(static_cast<kb::InstanceId>(inst));
      }
    }
    mapping.tables.push_back(std::move(tm));
  }
  return mapping;
}

std::optional<ClassFeedback> ReadFeedback(LineReader& reader,
                                          int expected_iteration,
                                          int expected_k) {
  std::vector<std::string> f;
  if (!reader.Next(&f) || f.size() != 7 || f[0] != "F") {
    LTEE_DELTA_PARSE_FAIL(reader, "expected F record");
  }
  long long iter = 0, k = 0, cls = 0, num_clusters = 0, nrc = 0, nri = 0;
  if (!ParseI64(f[1], &iter) || !ParseI64(f[2], &k) || !ParseI64(f[3], &cls) ||
      !ParseI64(f[4], &num_clusters) || !ParseI64(f[5], &nrc) ||
      !ParseI64(f[6], &nri) || iter != expected_iteration ||
      k != expected_k || nrc < 0 || nri < 0) {
    LTEE_DELTA_PARSE_FAIL(reader, "bad F record");
  }
  ClassFeedback fb;
  fb.cls = static_cast<kb::ClassId>(cls);
  fb.num_clusters = static_cast<int>(num_clusters);
  fb.row_clusters.reserve(static_cast<size_t>(nrc));
  for (long long i = 0; i < nrc; ++i) {
    if (!reader.Next(&f) || f.size() != 4 || f[0] != "FC") {
      LTEE_DELTA_PARSE_FAIL(reader, "expected FC record");
    }
    long long table = 0, row = 0, cluster = 0;
    if (!ParseI64(f[1], &table) || !ParseI64(f[2], &row) ||
        !ParseI64(f[3], &cluster)) {
      LTEE_DELTA_PARSE_FAIL(reader, "bad FC record");
    }
    fb.row_clusters.emplace_back(
        webtable::RowRef{static_cast<webtable::TableId>(table),
                         static_cast<int32_t>(row)},
        static_cast<int>(cluster));
  }
  fb.row_instances.reserve(static_cast<size_t>(nri));
  for (long long i = 0; i < nri; ++i) {
    if (!reader.Next(&f) || f.size() != 4 || f[0] != "FR") {
      LTEE_DELTA_PARSE_FAIL(reader, "expected FR record");
    }
    long long table = 0, row = 0, instance = 0;
    if (!ParseI64(f[1], &table) || !ParseI64(f[2], &row) ||
        !ParseI64(f[3], &instance)) {
      LTEE_DELTA_PARSE_FAIL(reader, "bad FR record");
    }
    fb.row_instances.emplace_back(
        webtable::RowRef{static_cast<webtable::TableId>(table),
                         static_cast<int32_t>(row)},
        static_cast<kb::InstanceId>(instance));
  }
  return fb;
}

}  // namespace

void SaveDeltaState(const DeltaState& state, std::ostream& out) {
  out << kHeaderTag << '\t' << state.seed << '\t' << (state.dedup ? 1 : 0)
      << '\t' << state.min_facts << '\t' << state.snapshot_version << '\n';
  out << 'C' << '\t' << state.classes.size();
  for (kb::ClassId cls : state.classes) out << '\t' << cls;
  out << '\n';
  out << "M\t" << state.mappings.size() << '\n';
  for (size_t i = 0; i < state.mappings.size(); ++i) {
    WriteMapping(state.mappings[i], static_cast<int>(i), out);
  }
  out << "FB\t" << state.feedback.size() << '\t' << state.classes.size()
      << '\n';
  for (size_t i = 0; i < state.feedback.size(); ++i) {
    for (size_t k = 0; k < state.feedback[i].size(); ++k) {
      WriteFeedback(state.feedback[i][k], static_cast<int>(i),
                    static_cast<int>(k), out);
    }
  }
  out << "CHANGESET\n";
  kb::SaveChangeSet(state.changes, out);
}

std::optional<DeltaState> LoadDeltaState(std::istream& in) {
  LineReader reader(in);
  std::vector<std::string> f;
  if (!reader.Next(&f) || f.size() != 5 || f[0] != kHeaderTag) {
    LTEE_DELTA_PARSE_FAIL(reader, "expected DSTATE1 header");
  }
  DeltaState state;
  long long seed = 0, dedup = 0, min_facts = 0, version = 0;
  if (!ParseI64(f[1], &seed) || !ParseI64(f[2], &dedup) ||
      !ParseI64(f[3], &min_facts) || !ParseI64(f[4], &version) ||
      (dedup != 0 && dedup != 1) || min_facts < 0 || version < 0) {
    LTEE_DELTA_PARSE_FAIL(reader, "bad DSTATE1 header");
  }
  state.seed = static_cast<uint64_t>(seed);
  state.dedup = dedup == 1;
  state.min_facts = static_cast<size_t>(min_facts);
  state.snapshot_version = static_cast<uint64_t>(version);
  if (!reader.Next(&f) || f.size() < 2 || f[0] != "C") {
    LTEE_DELTA_PARSE_FAIL(reader, "expected C record");
  }
  long long num_classes = 0;
  if (!ParseI64(f[1], &num_classes) || num_classes < 0 ||
      f.size() != static_cast<size_t>(num_classes) + 2) {
    LTEE_DELTA_PARSE_FAIL(reader, "bad C record");
  }
  state.classes.reserve(static_cast<size_t>(num_classes));
  for (long long i = 0; i < num_classes; ++i) {
    long long cls = 0;
    if (!ParseI64(f[static_cast<size_t>(i) + 2], &cls)) {
      LTEE_DELTA_PARSE_FAIL(reader, "bad C record class id");
    }
    state.classes.push_back(static_cast<kb::ClassId>(cls));
  }
  if (!reader.Next(&f) || f.size() != 2 || f[0] != "M") {
    LTEE_DELTA_PARSE_FAIL(reader, "expected M record");
  }
  long long num_iterations = 0;
  if (!ParseI64(f[1], &num_iterations) || num_iterations < 0) {
    LTEE_DELTA_PARSE_FAIL(reader, "bad M record");
  }
  state.mappings.reserve(static_cast<size_t>(num_iterations));
  for (long long i = 0; i < num_iterations; ++i) {
    auto mapping = ReadMapping(reader, static_cast<int>(i));
    if (!mapping) return std::nullopt;
    state.mappings.push_back(std::move(*mapping));
  }
  if (!reader.Next(&f) || f.size() != 3 || f[0] != "FB") {
    LTEE_DELTA_PARSE_FAIL(reader, "expected FB record");
  }
  long long fb_iterations = 0, fb_classes = 0;
  if (!ParseI64(f[1], &fb_iterations) || !ParseI64(f[2], &fb_classes) ||
      fb_iterations < 0 || fb_classes != num_classes) {
    LTEE_DELTA_PARSE_FAIL(reader, "bad FB record");
  }
  state.feedback.resize(static_cast<size_t>(fb_iterations));
  for (long long i = 0; i < fb_iterations; ++i) {
    auto& per_class = state.feedback[static_cast<size_t>(i)];
    per_class.reserve(static_cast<size_t>(fb_classes));
    for (long long k = 0; k < fb_classes; ++k) {
      auto fb = ReadFeedback(reader, static_cast<int>(i),
                             static_cast<int>(k));
      if (!fb) return std::nullopt;
      per_class.push_back(std::move(*fb));
    }
  }
  if (!reader.Next(&f) || f.size() != 1 || f[0] != "CHANGESET") {
    LTEE_DELTA_PARSE_FAIL(reader, "expected CHANGESET sentinel");
  }
  auto changes = kb::LoadChangeSet(in);
  if (!changes) {
    LTEE_LOG(kError) << "delta state parse error: bad changeset section";
    return std::nullopt;
  }
  state.changes = std::move(*changes);
  return state;
}

#undef LTEE_DELTA_PARSE_FAIL

StagedClassChange StageClassRun(const kb::KnowledgeBase& kb,
                                const ClassRunResult& class_run,
                                const StageClassOptions& options) {
  std::vector<fusion::CreatedEntity> entities = class_run.entities;
  std::vector<newdetect::Detection> detections = class_run.detections;
  StagedClassChange out;
  if (options.dedup) {
    DedupResult dedup =
        DeduplicateEntities(std::move(entities), std::move(detections));
    entities = std::move(dedup.entities);
    detections = std::move(dedup.detections);
    out.dedup_merges = dedup.merges;
  }
  if (options.ntriples != nullptr) {
    ExportNTriples(kb, entities, detections, options.uri_prefix,
                   *options.ntriples, options.update);
  }
  SlotFillingResult fills = FillSlots(kb, entities, detections);
  out.confirmations = fills.confirmations;
  out.conflicts = fills.conflicts;
  out.change = BuildClassChange(class_run.cls, entities, detections,
                                fills.new_facts, options.update);
  return out;
}

DeltaIngestResult DeltaIngest(const LteePipeline& pipe,
                              webtable::TableCorpus* corpus,
                              std::vector<webtable::WebTable> batch,
                              DeltaState* state) {
  util::trace::ScopedSpan span("pipeline.delta_ingest");
  span.AddArg("batch_tables", batch.size());
  DeltaIngestResult result;
  result.new_tables = batch.size();
  for (webtable::WebTable& table : batch) {
    corpus->Add(std::move(table));
  }
  StageContext ctx;
  ctx.corpus = corpus;
  ctx.classes = state->classes;
  ctx.scope = ClassScope::Of({});
  ctx.baseline.mappings = &state->mappings;
  ctx.baseline.feedback = &state->feedback;
  result.run = pipe.RunScoped(ctx);
  result.recomputed = result.run.recomputed;
  StageClassOptions options;
  options.dedup = state->dedup;
  options.update.min_facts = state->min_facts;
  for (const ClassRunResult& class_run : result.run.classes) {
    StagedClassChange staged =
        StageClassRun(pipe.knowledge_base(), class_run, options);
    state->changes.Replace(std::move(staged.change));
  }
  state->mappings = result.run.mappings;
  state->feedback = result.run.feedback;
  span.AddArg("recomputed_classes", result.recomputed.size());
  util::Metrics().GetCounter("ltee.delta.ingests").Increment(1);
  util::Metrics()
      .GetCounter("ltee.delta.tables_ingested")
      .Increment(result.new_tables);
  util::Metrics()
      .GetCounter("ltee.delta.classes_recomputed")
      .Increment(result.recomputed.size());
  return result;
}

}  // namespace ltee::pipeline
