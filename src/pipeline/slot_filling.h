#ifndef LTEE_PIPELINE_SLOT_FILLING_H_
#define LTEE_PIPELINE_SLOT_FILLING_H_

#include <vector>

#include "fusion/entity.h"
#include "kb/knowledge_base.h"
#include "newdetect/new_detector.h"

namespace ltee::pipeline {

/// One proposed fact for an existing KB instance.
struct SlotFill {
  kb::InstanceId instance = kb::kInvalidInstance;
  kb::PropertyId property = kb::kInvalidProperty;
  types::Value value;
  /// Source entity index (provenance).
  int entity = -1;
};

/// Outcome of a slot-filling pass.
struct SlotFillingResult {
  /// Fused values for empty slots of matched instances (the task of the
  /// paper's predecessor work [27], Section 6's slot-filling comparison).
  std::vector<SlotFill> new_facts;
  /// Values that confirm a fact already in the KB.
  size_t confirmations = 0;
  /// Values that conflict with an existing KB fact.
  size_t conflicts = 0;
};

/// Byproduct extension: the pipeline's entities that matched *existing*
/// instances also carry fused facts; slots the KB leaves empty can be
/// filled from them ("adding missing facts for existing instances").
/// Returns the proposed fills plus confirmation/conflict counts against
/// the facts the KB already has.
SlotFillingResult FillSlots(const kb::KnowledgeBase& kb,
                            const std::vector<fusion::CreatedEntity>& entities,
                            const std::vector<newdetect::Detection>& detections);

/// Applies proposed fills to the KB. Returns the number of facts added.
size_t ApplySlotFills(kb::KnowledgeBase* kb,
                      const std::vector<SlotFill>& fills);

}  // namespace ltee::pipeline

#endif  // LTEE_PIPELINE_SLOT_FILLING_H_
