#include "pipeline/run_summary.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace ltee::pipeline {

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendInt(std::string* out, long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  out->append(buf);
}

void AppendValue(std::string* out, const types::Value& v) {
  switch (v.type) {
    case types::DataType::kText:
      out->append("T:");
      out->append(v.text);
      break;
    case types::DataType::kNominalString:
      out->append("N:");
      out->append(v.text);
      break;
    case types::DataType::kInstanceReference:
      out->append("R:");
      AppendInt(out, v.ref);
      out->push_back(':');
      out->append(v.text);
      break;
    case types::DataType::kDate:
      out->append("D:");
      AppendInt(out, v.date.year);
      out->push_back('-');
      AppendInt(out, v.date.month);
      out->push_back('-');
      AppendInt(out, v.date.day);
      out->push_back(':');
      AppendInt(out, static_cast<int>(v.date.granularity));
      break;
    case types::DataType::kQuantity:
      out->append("Q:");
      AppendDouble(out, v.number);
      break;
    case types::DataType::kNominalInteger:
      out->append("I:");
      AppendInt(out, v.integer);
      break;
  }
}

/// Entity bag-of-words as sorted token strings — representation-independent
/// (the in-memory container, token ids and their ordering are implementation
/// details).
std::vector<std::string> SortedBow(const fusion::CreatedEntity& entity,
                                   const util::TokenDictionary& dict) {
  std::vector<std::string> tokens;
  tokens.reserve(entity.bow.size());
  for (uint32_t id : entity.bow) tokens.emplace_back(dict.token(id));
  std::sort(tokens.begin(), tokens.end());
  return tokens;
}

void AppendMapping(std::string* out, const matching::SchemaMapping& mapping) {
  for (const auto& tm : mapping.tables) {
    if (tm.table < 0) continue;
    out->append("table ");
    AppendInt(out, tm.table);
    out->append(" lc ");
    AppendInt(out, tm.label_column);
    out->append(" cls ");
    AppendInt(out, tm.cls);
    out->append(" score ");
    AppendDouble(out, tm.class_score);
    out->push_back('\n');
    for (size_t c = 0; c < tm.columns.size(); ++c) {
      const auto& col = tm.columns[c];
      out->append("  col ");
      AppendInt(out, static_cast<long long>(c));
      out->append(" det ");
      AppendInt(out, static_cast<int>(col.detected));
      out->append(" prop ");
      AppendInt(out, col.property);
      out->append(" score ");
      AppendDouble(out, col.score);
      out->push_back('\n');
    }
    out->append("  rowinst");
    for (kb::InstanceId inst : tm.row_instance) {
      out->push_back(' ');
      AppendInt(out, inst);
    }
    out->push_back('\n');
  }
}

void AppendClassRun(std::string* out, const ClassRunResult& run) {
  out->append("class ");
  AppendInt(out, run.cls);
  out->append(" rows ");
  AppendInt(out, static_cast<long long>(run.rows.rows.size()));
  out->append(" clusters ");
  AppendInt(out, run.num_clusters);
  out->push_back('\n');

  out->append("tables");
  for (webtable::TableId tid : run.rows.tables) {
    out->push_back(' ');
    AppendInt(out, tid);
  }
  out->push_back('\n');

  for (size_t i = 0; i < run.rows.rows.size(); ++i) {
    const auto& row = run.rows.rows[i];
    out->append("row ");
    AppendInt(out, row.ref.table);
    out->push_back(':');
    AppendInt(out, row.ref.row);
    out->append(" ti ");
    AppendInt(out, row.table_index);
    out->append(" label ");
    out->append(row.normalized_label);
    out->push_back('\n');
    for (const auto& value : row.values) {
      out->append("  val ");
      AppendInt(out, value.property);
      out->append(" c ");
      AppendInt(out, value.column);
      out->push_back(' ');
      AppendValue(out, value.value);
      out->push_back('\n');
    }
  }

  for (size_t t = 0; t < run.rows.table_implicit.size(); ++t) {
    out->append("implicit ");
    AppendInt(out, static_cast<long long>(t));
    out->push_back('\n');
    for (const auto& attr : run.rows.table_implicit[t]) {
      out->append("  ia ");
      AppendInt(out, attr.property);
      out->push_back(' ');
      AppendValue(out, attr.value);
      out->append(" s ");
      AppendDouble(out, attr.score);
      out->push_back('\n');
    }
  }

  for (size_t t = 0; t < run.rows.table_phi.size(); ++t) {
    std::map<uint32_t, double> sorted(run.rows.table_phi[t].begin(),
                                      run.rows.table_phi[t].end());
    out->append("phi ");
    AppendInt(out, static_cast<long long>(t));
    for (const auto& [label, weight] : sorted) {
      out->push_back(' ');
      AppendInt(out, label);
      out->push_back('=');
      AppendDouble(out, weight);
    }
    out->push_back('\n');
  }

  out->append("assign");
  for (int c : run.cluster_of_row) {
    out->push_back(' ');
    AppendInt(out, c);
  }
  out->push_back('\n');

  for (const auto& entity : run.entities) {
    out->append("entity ");
    AppendInt(out, entity.cluster_id);
    out->append(" cls ");
    AppendInt(out, entity.cls);
    out->push_back('\n');
    for (const auto& label : entity.labels) {
      out->append("  label ");
      out->append(label);
      out->push_back('\n');
    }
    out->append("  rows");
    for (const auto& ref : entity.rows) {
      out->push_back(' ');
      AppendInt(out, ref.table);
      out->push_back(':');
      AppendInt(out, ref.row);
    }
    out->push_back('\n');
    for (const auto& fact : entity.facts) {
      out->append("  fact ");
      AppendInt(out, fact.property);
      out->push_back(' ');
      AppendValue(out, fact.value);
      out->push_back('\n');
    }
    out->append("  bow");
    for (const auto& token : SortedBow(entity, *run.rows.dict)) {
      out->push_back(' ');
      out->append(token);
    }
    out->push_back('\n');
    for (const auto& attr : entity.implicit_attrs) {
      out->append("  ia ");
      AppendInt(out, attr.property);
      out->push_back(' ');
      AppendValue(out, attr.value);
      out->append(" s ");
      AppendDouble(out, attr.score);
      out->push_back('\n');
    }
  }

  for (const auto& det : run.detections) {
    out->append("det new ");
    AppendInt(out, det.is_new ? 1 : 0);
    out->append(" inst ");
    AppendInt(out, det.instance);
    out->append(" score ");
    AppendDouble(out, det.best_score);
    out->push_back('\n');
  }
}

}  // namespace

std::string SummarizeRun(const PipelineRunResult& run) {
  std::string out;
  out.append("ltee run summary v1\n");
  out.append("mappings ");
  AppendInt(&out, static_cast<long long>(run.mappings.size()));
  out.push_back('\n');
  for (size_t m = 0; m < run.mappings.size(); ++m) {
    out.append("mapping ");
    AppendInt(&out, static_cast<long long>(m));
    out.push_back('\n');
    AppendMapping(&out, run.mappings[m]);
  }
  out.append("classes ");
  AppendInt(&out, static_cast<long long>(run.classes.size()));
  out.push_back('\n');
  for (const auto& class_run : run.classes) {
    AppendClassRun(&out, class_run);
  }
  return out;
}

}  // namespace ltee::pipeline
