#ifndef LTEE_PIPELINE_KB_UPDATE_H_
#define LTEE_PIPELINE_KB_UPDATE_H_

#include <iosfwd>
#include <vector>

#include "fusion/entity.h"
#include "kb/knowledge_base.h"
#include "newdetect/new_detector.h"

namespace ltee::pipeline {

/// Result of applying pipeline output to a knowledge base.
struct KbUpdateResult {
  size_t instances_added = 0;
  size_t facts_added = 0;
  std::vector<kb::InstanceId> new_instance_ids;
};

/// Options of the final "add to knowledge base" step (Figure 1's last
/// arrow). The minimum-fact filter implements the Section 5 finding that
/// excluding 1- and 2-value entities raises accuracy substantially
/// (GF-Player: 0.60 -> 0.72 -> 0.85).
struct KbUpdateOptions {
  size_t min_facts = 0;
};

/// Adds every entity classified as new to `kb` as a fresh instance of its
/// class, with its labels and fused facts. Returns what was added.
KbUpdateResult AddNewEntitiesToKb(
    kb::KnowledgeBase* kb, const std::vector<fusion::CreatedEntity>& entities,
    const std::vector<newdetect::Detection>& detections,
    const KbUpdateOptions& options = {});

/// Exports the new entities as RDF N-Triples (one triple per label and per
/// fact) under the given URI prefix — the interchange format a DBpedia-
/// style knowledge base ingests.
void ExportNTriples(const kb::KnowledgeBase& kb,
                    const std::vector<fusion::CreatedEntity>& entities,
                    const std::vector<newdetect::Detection>& detections,
                    const std::string& uri_prefix, std::ostream& out,
                    const KbUpdateOptions& options = {});

}  // namespace ltee::pipeline

#endif  // LTEE_PIPELINE_KB_UPDATE_H_
