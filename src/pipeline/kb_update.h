#ifndef LTEE_PIPELINE_KB_UPDATE_H_
#define LTEE_PIPELINE_KB_UPDATE_H_

#include <iosfwd>
#include <vector>

#include "fusion/entity.h"
#include "kb/applier.h"
#include "kb/knowledge_base.h"
#include "newdetect/new_detector.h"
#include "pipeline/slot_filling.h"

namespace ltee::pipeline {

/// Result of applying pipeline output to a knowledge base.
struct KbUpdateResult {
  size_t instances_added = 0;
  size_t facts_added = 0;
  std::vector<kb::InstanceId> new_instance_ids;
};

/// Options of the final "add to knowledge base" step (Figure 1's last
/// arrow). The minimum-fact filter implements the Section 5 finding that
/// excluding 1- and 2-value entities raises accuracy substantially
/// (GF-Player: 0.60 -> 0.72 -> 0.85).
struct KbUpdateOptions {
  size_t min_facts = 0;
};

/// Builds the typed ClassChange of one class sweep, the unit the
/// kb::Applier stages: every detected-new entity that clears the label and
/// min-facts filters becomes an EntityAdd, every proposed slot fill a
/// FactAdd. Rejections (no_labels / below_min_facts) are recorded in the
/// provenance ledger here; acceptances are recorded when the changeset is
/// applied, so building and applying together emit exactly the events the
/// legacy in-place path emitted.
kb::ClassChange BuildClassChange(
    kb::ClassId cls, const std::vector<fusion::CreatedEntity>& entities,
    const std::vector<newdetect::Detection>& detections,
    const std::vector<SlotFill>& fills, const KbUpdateOptions& options = {});

/// Adds every entity classified as new to `kb` as a fresh instance of its
/// class, with its labels and fused facts. Returns what was added.
/// Implemented as BuildClassChange + kb::Applier::Apply; kept as the
/// convenience entry point for callers that stage and apply in one step.
KbUpdateResult AddNewEntitiesToKb(
    kb::KnowledgeBase* kb, const std::vector<fusion::CreatedEntity>& entities,
    const std::vector<newdetect::Detection>& detections,
    const KbUpdateOptions& options = {});

/// Exports the new entities as RDF N-Triples (one triple per label and per
/// fact) under the given URI prefix — the interchange format a DBpedia-
/// style knowledge base ingests.
void ExportNTriples(const kb::KnowledgeBase& kb,
                    const std::vector<fusion::CreatedEntity>& entities,
                    const std::vector<newdetect::Detection>& detections,
                    const std::string& uri_prefix, std::ostream& out,
                    const KbUpdateOptions& options = {});

}  // namespace ltee::pipeline

#endif  // LTEE_PIPELINE_KB_UPDATE_H_
