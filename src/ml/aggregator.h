#ifndef LTEE_ML_AGGREGATOR_H_
#define LTEE_ML_AGGREGATOR_H_

#include <vector>

#include "ml/dataset.h"
#include "ml/random_forest.h"
#include "ml/weighted_average.h"
#include "util/random.h"

namespace ltee::ml {

/// The three score-aggregation approaches evaluated by the paper for both
/// row clustering and new detection.
enum class AggregationKind {
  /// GA-learned weighted average of similarity scores.
  kWeightedAverage,
  /// Random forest regression over similarity and confidence scores.
  kRandomForest,
  /// Learned weighted blend of the two above (the best-performing variant).
  kCombined,
};

/// Trains and applies one of the aggregation approaches, producing scores
/// in [-1, 1] where positive means "same instance". Also exposes the
/// paper's metric-importance read-out: the average of each metric's
/// relative importance inside the random forest and its weight in the
/// weighted-average function.
class ScoreAggregator {
 public:
  ScoreAggregator() = default;

  /// Trains on labeled pairs (targets +1/-1). Upsamples to balance classes
  /// before learning. `kind` selects the aggregation approach.
  void Train(std::vector<Example> examples, AggregationKind kind,
             util::Rng& rng);

  /// Aggregated score in [-1, 1].
  double Score(const ScoredFeatures& f) const;

  /// Per-metric importance (normalized to sum to 1). For kCombined this is
  /// the average of the forest importance (sim+conf features of a metric
  /// pooled) and the normalized weighted-average weight.
  std::vector<double> MetricImportances() const;

  AggregationKind kind() const { return kind_; }
  bool trained() const { return trained_; }
  const WeightedAverageModel& weighted_average() const { return wa_; }
  const RandomForestRegressor& forest() const { return forest_; }

 private:
  AggregationKind kind_ = AggregationKind::kCombined;
  WeightedAverageModel wa_;
  RandomForestRegressor forest_;
  double blend_wa_ = 0.5;  // learned combination weight for kCombined
  size_t num_metrics_ = 0;
  bool trained_ = false;
};

}  // namespace ltee::ml

#endif  // LTEE_ML_AGGREGATOR_H_
