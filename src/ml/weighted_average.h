#ifndef LTEE_ML_WEIGHTED_AVERAGE_H_
#define LTEE_ML_WEIGHTED_AVERAGE_H_

#include <vector>

#include "ml/dataset.h"
#include "ml/genetic.h"
#include "util/random.h"

namespace ltee::ml {

/// Weighted-average score aggregation (Section 3.2): a learned weight per
/// metric plus a learned decision threshold. The threshold also normalizes
/// the output to [-1, 1] — scores above it map to (0, 1], scores below to
/// [-1, 0) — which is the form the greedy correlation clusterer expects.
/// Confidence scores are not considered by this aggregator.
class WeightedAverageModel {
 public:
  WeightedAverageModel() = default;
  WeightedAverageModel(std::vector<double> weights, double threshold)
      : weights_(std::move(weights)), threshold_(threshold) {}

  /// Learns weights and the threshold with a genetic algorithm maximizing
  /// matching F1 on `examples` (targets +1/-1).
  void Train(const std::vector<Example>& examples, util::Rng& rng,
             const GeneticOptions& options = {});

  /// Raw weighted average of the similarity scores, in [0, 1]. Missing
  /// similarities (-1) are excluded from both numerator and denominator.
  double RawScore(const ScoredFeatures& f) const;

  /// Threshold-normalized score in [-1, 1].
  double Score(const ScoredFeatures& f) const;

  const std::vector<double>& weights() const { return weights_; }
  double threshold() const { return threshold_; }

  /// Weights normalized to sum to 1 (the paper reports these as the
  /// weighted-average half of the metric-importance score).
  std::vector<double> NormalizedWeights() const;

 private:
  std::vector<double> weights_;
  double threshold_ = 0.5;
};

}  // namespace ltee::ml

#endif  // LTEE_ML_WEIGHTED_AVERAGE_H_
