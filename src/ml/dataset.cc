#include "ml/dataset.h"

namespace ltee::ml {

std::vector<double> FlattenForForest(const ScoredFeatures& f) {
  std::vector<double> out;
  out.reserve(f.sims.size() + f.confs.size());
  for (double s : f.sims) out.push_back(s < 0.0 ? 0.0 : s);
  for (double c : f.confs) out.push_back(c);
  return out;
}

std::vector<double> SimsOnly(const ScoredFeatures& f) {
  std::vector<double> out;
  out.reserve(f.sims.size());
  for (double s : f.sims) out.push_back(s < 0.0 ? 0.0 : s);
  return out;
}

std::vector<Example> BalanceByUpsampling(std::vector<Example> examples,
                                         util::Rng& rng) {
  std::vector<size_t> pos, neg;
  for (size_t i = 0; i < examples.size(); ++i) {
    (examples[i].target > 0.0 ? pos : neg).push_back(i);
  }
  if (pos.empty() || neg.empty()) return examples;
  const auto& minority = pos.size() < neg.size() ? pos : neg;
  const size_t deficit =
      (pos.size() < neg.size() ? neg.size() - pos.size()
                               : pos.size() - neg.size());
  examples.reserve(examples.size() + deficit);
  for (size_t i = 0; i < deficit; ++i) {
    examples.push_back(examples[minority[rng.NextBounded(minority.size())]]);
  }
  return examples;
}

}  // namespace ltee::ml
