#include "ml/cross_validation.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace ltee::ml {

std::vector<int> AssignFolds(size_t n, const std::vector<int64_t>& group,
                             const std::vector<int>& stratum, int k,
                             util::Rng& rng) {
  // Collect effective groups: explicit group ids plus singletons.
  struct GroupInfo {
    std::vector<int> items;
    int dominant_stratum = 0;
  };
  std::unordered_map<int64_t, int> group_index;
  std::vector<GroupInfo> groups;
  for (size_t i = 0; i < n; ++i) {
    int gi;
    if (group[i] >= 0) {
      auto [it, inserted] =
          group_index.emplace(group[i], static_cast<int>(groups.size()));
      if (inserted) groups.emplace_back();
      gi = it->second;
    } else {
      gi = static_cast<int>(groups.size());
      groups.emplace_back();
    }
    groups[gi].items.push_back(static_cast<int>(i));
  }
  for (auto& g : groups) {
    std::map<int, int> counts;
    for (int item : g.items) counts[stratum[item]] += 1;
    int best = 0, best_count = -1;
    for (auto [s, c] : counts) {
      if (c > best_count) {
        best = s;
        best_count = c;
      }
    }
    g.dominant_stratum = best;
  }

  // Shuffle groups, then greedily place each into the currently smallest
  // fold of its dominant stratum — balancing strata across folds.
  std::vector<int> order(groups.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  rng.Shuffle(&order);
  // Larger groups first for better balance.
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return groups[a].items.size() > groups[b].items.size();
  });

  std::map<int, std::vector<int>> load_by_stratum;  // stratum -> per-fold load
  std::vector<int> fold_of_item(n, 0);
  for (int gi : order) {
    const auto& g = groups[gi];
    auto& load = load_by_stratum[g.dominant_stratum];
    if (load.empty()) load.assign(k, 0);
    int best_fold = 0;
    for (int f = 1; f < k; ++f) {
      if (load[f] < load[best_fold]) best_fold = f;
    }
    load[best_fold] += static_cast<int>(g.items.size());
    for (int item : g.items) fold_of_item[item] = best_fold;
  }
  return fold_of_item;
}

}  // namespace ltee::ml
