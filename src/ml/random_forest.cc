#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace ltee::ml {

namespace {

double MeanOf(const std::vector<double>& y, const std::vector<int>& idx,
              int begin, int end) {
  double s = 0.0;
  for (int i = begin; i < end; ++i) s += y[idx[i]];
  return s / static_cast<double>(end - begin);
}

double Sse(const std::vector<double>& y, const std::vector<int>& idx,
           int begin, int end, double mean) {
  double s = 0.0;
  for (int i = begin; i < end; ++i) {
    double d = y[idx[i]] - mean;
    s += d * d;
  }
  return s;
}

}  // namespace

double RandomForestRegressor::Tree::PredictOne(
    const std::vector<double>& x) const {
  int32_t node = 0;
  for (;;) {
    const Node& n = nodes[node];
    if (n.feature < 0) return n.value;
    node = x[n.feature] <= n.threshold ? n.left : n.right;
  }
}

int32_t RandomForestRegressor::BuildNode(
    Tree& tree, const std::vector<std::vector<double>>& x,
    const std::vector<double>& y, std::vector<int>& indices, int begin,
    int end, int depth, util::Rng& rng) {
  const int32_t node_id = static_cast<int32_t>(tree.nodes.size());
  tree.nodes.emplace_back();
  const int count = end - begin;
  const double mean = MeanOf(y, indices, begin, end);
  const double node_sse = Sse(y, indices, begin, end, mean);

  bool make_leaf = depth >= options_.max_depth ||
                   count < 2 * options_.min_samples_leaf || node_sse <= 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0, best_gain = 0.0;
  int best_split_pos = -1;

  if (!make_leaf) {
    int mtry = options_.feature_fraction > 0.0
                   ? std::max(1, static_cast<int>(std::round(
                                     options_.feature_fraction *
                                     static_cast<double>(num_features_))))
                   : std::max(1, static_cast<int>(std::sqrt(
                                     static_cast<double>(num_features_))));
    std::vector<int> feature_order(num_features_);
    std::iota(feature_order.begin(), feature_order.end(), 0);
    rng.Shuffle(&feature_order);
    feature_order.resize(std::min<size_t>(feature_order.size(),
                                          static_cast<size_t>(mtry)));

    std::vector<int> work(indices.begin() + begin, indices.begin() + end);
    for (int f : feature_order) {
      std::sort(work.begin(), work.end(),
                [&](int a, int b) { return x[a][f] < x[b][f]; });
      // Prefix sums for O(n) threshold scan.
      double left_sum = 0.0, left_sq = 0.0;
      double total_sum = 0.0, total_sq = 0.0;
      for (int i : work) {
        total_sum += y[i];
        total_sq += y[i] * y[i];
      }
      for (int pos = 1; pos < count; ++pos) {
        const int i = work[pos - 1];
        left_sum += y[i];
        left_sq += y[i] * y[i];
        if (x[work[pos - 1]][f] == x[work[pos]][f]) continue;  // tied values
        const int nl = pos, nr = count - pos;
        if (nl < options_.min_samples_leaf || nr < options_.min_samples_leaf) {
          continue;
        }
        const double right_sum = total_sum - left_sum;
        const double right_sq = total_sq - left_sq;
        const double sse_l = left_sq - left_sum * left_sum / nl;
        const double sse_r = right_sq - right_sum * right_sum / nr;
        const double gain = node_sse - (sse_l + sse_r);
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best_feature = f;
          best_threshold = 0.5 * (x[work[pos - 1]][f] + x[work[pos]][f]);
          best_split_pos = pos;
        }
      }
    }
    if (best_feature < 0) make_leaf = true;
  }

  if (make_leaf) {
    tree.nodes[node_id].feature = -1;
    tree.nodes[node_id].value = mean;
    return node_id;
  }
  (void)best_split_pos;

  importances_[best_feature] += best_gain;
  // Partition indices[begin, end) by the chosen split.
  int mid = begin;
  for (int i = begin; i < end; ++i) {
    if (x[indices[i]][best_feature] <= best_threshold) {
      std::swap(indices[i], indices[mid]);
      ++mid;
    }
  }
  tree.nodes[node_id].feature = best_feature;
  tree.nodes[node_id].threshold = best_threshold;
  const int32_t left =
      BuildNode(tree, x, y, indices, begin, mid, depth + 1, rng);
  const int32_t right = BuildNode(tree, x, y, indices, mid, end, depth + 1, rng);
  tree.nodes[node_id].left = left;
  tree.nodes[node_id].right = right;
  return node_id;
}

void RandomForestRegressor::Train(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& targets, util::Rng& rng) {
  trees_.clear();
  oob_indices_.clear();
  const size_t n = features.size();
  if (n == 0) return;
  num_features_ = features.front().size();
  importances_.assign(num_features_, 0.0);

  const int bag_size = std::max(
      1, static_cast<int>(std::round(options_.bag_fraction *
                                     static_cast<double>(n))));
  std::vector<double> oob_sum(n, 0.0);
  std::vector<int> oob_count(n, 0);

  for (int t = 0; t < options_.num_trees; ++t) {
    std::vector<char> in_bag(n, 0);
    std::vector<int> sample;
    sample.reserve(bag_size);
    for (int i = 0; i < bag_size; ++i) {
      size_t pick = rng.NextBounded(n);
      sample.push_back(static_cast<int>(pick));
      in_bag[pick] = 1;
    }
    Tree tree;
    BuildNode(tree, features, targets, sample, 0,
              static_cast<int>(sample.size()), 0, rng);
    std::vector<int> oob;
    for (size_t i = 0; i < n; ++i) {
      if (!in_bag[i]) {
        oob.push_back(static_cast<int>(i));
        oob_sum[i] += tree.PredictOne(features[i]);
        oob_count[i] += 1;
      }
    }
    trees_.push_back(std::move(tree));
    oob_indices_.push_back(std::move(oob));
  }

  double err = 0.0;
  int counted = 0;
  for (size_t i = 0; i < n; ++i) {
    if (oob_count[i] == 0) continue;
    double pred = oob_sum[i] / oob_count[i];
    double d = pred - targets[i];
    err += d * d;
    ++counted;
  }
  oob_error_ = counted == 0 ? 0.0 : err / counted;

  double total_importance = 0.0;
  for (double imp : importances_) total_importance += imp;
  if (total_importance > 0.0) {
    for (double& imp : importances_) imp /= total_importance;
  }
}

double RandomForestRegressor::Predict(const std::vector<double>& x) const {
  if (trees_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& tree : trees_) s += tree.PredictOne(x);
  return s / static_cast<double>(trees_.size());
}

double RandomForestRegressor::TuneBagFraction(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& targets, util::Rng& rng,
    const std::vector<double>& candidates) {
  double best_fraction = options_.bag_fraction;
  double best_error = std::numeric_limits<double>::infinity();
  for (double frac : candidates) {
    RandomForestOptions opts = options_;
    opts.bag_fraction = frac;
    RandomForestRegressor candidate(opts);
    util::Rng fork = rng.Fork();
    candidate.Train(features, targets, fork);
    if (candidate.OobError() < best_error) {
      best_error = candidate.OobError();
      best_fraction = frac;
      *this = std::move(candidate);
    }
  }
  return best_fraction;
}

}  // namespace ltee::ml
