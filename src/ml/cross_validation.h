#ifndef LTEE_ML_CROSS_VALIDATION_H_
#define LTEE_ML_CROSS_VALIDATION_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace ltee::ml {

/// Assigns `n` items to `k` folds such that
///  - all items sharing a group id land in the same fold ("all clusters of
///    a homonym group were always placed in one fold"), and
///  - items are stratified by `stratum` ("we ensured that we evenly split
///    new clusters").
/// `group[i]` < 0 means the item is in no group (its own singleton group).
/// Returns fold index per item, each in [0, k).
std::vector<int> AssignFolds(size_t n, const std::vector<int64_t>& group,
                             const std::vector<int>& stratum, int k,
                             util::Rng& rng);

}  // namespace ltee::ml

#endif  // LTEE_ML_CROSS_VALIDATION_H_
