#include "ml/weighted_average.h"

#include <algorithm>

#include "util/stats.h"

namespace ltee::ml {

void WeightedAverageModel::Train(const std::vector<Example>& examples,
                                 util::Rng& rng,
                                 const GeneticOptions& options) {
  if (examples.empty()) return;
  const size_t num_metrics = examples.front().features.sims.size();
  // Genome: one weight per metric followed by the threshold.
  auto fitness = [&](const std::vector<double>& genome) {
    WeightedAverageModel candidate(
        std::vector<double>(genome.begin(), genome.end() - 1), genome.back());
    size_t tp = 0, fp = 0, fn = 0;
    for (const auto& ex : examples) {
      const bool predicted = candidate.RawScore(ex.features) >= genome.back();
      const bool actual = ex.target > 0.0;
      if (predicted && actual) ++tp;
      else if (predicted && !actual) ++fp;
      else if (!predicted && actual) ++fn;
    }
    double p = tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
    double r = tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
    return util::F1(p, r);
  };
  auto genome = GeneticMaximize(num_metrics + 1, fitness, rng, options);
  weights_.assign(genome.begin(), genome.end() - 1);
  threshold_ = std::min(0.95, std::max(0.05, genome.back()));
}

double WeightedAverageModel::RawScore(const ScoredFeatures& f) const {
  double num = 0.0, den = 0.0;
  const size_t n = std::min(weights_.size(), f.sims.size());
  for (size_t i = 0; i < n; ++i) {
    if (f.sims[i] < 0.0) continue;  // metric not applicable
    num += weights_[i] * f.sims[i];
    den += weights_[i];
  }
  return den == 0.0 ? 0.0 : num / den;
}

double WeightedAverageModel::Score(const ScoredFeatures& f) const {
  const double raw = RawScore(f);
  if (raw >= threshold_) {
    return threshold_ >= 1.0 ? 1.0 : (raw - threshold_) / (1.0 - threshold_);
  }
  return threshold_ <= 0.0 ? -1.0 : (raw - threshold_) / threshold_;
}

std::vector<double> WeightedAverageModel::NormalizedWeights() const {
  double sum = 0.0;
  for (double w : weights_) sum += w;
  std::vector<double> out(weights_.size(), 0.0);
  if (sum == 0.0) return out;
  for (size_t i = 0; i < weights_.size(); ++i) out[i] = weights_[i] / sum;
  return out;
}

}  // namespace ltee::ml
