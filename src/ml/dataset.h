#ifndef LTEE_ML_DATASET_H_
#define LTEE_ML_DATASET_H_

#include <vector>

#include "util/random.h"

namespace ltee::ml {

/// Output of a bank of similarity metrics for one comparison (row pair or
/// entity/instance pair): one similarity score per metric plus an optional
/// confidence per metric (0 when the metric attaches no confidence).
/// Similarities are in [0, 1]; a similarity of -1 marks "metric not
/// applicable" (e.g. ATTRIBUTE with no overlapping value pairs).
struct ScoredFeatures {
  std::vector<double> sims;
  std::vector<double> confs;
};

/// One labeled training example. `target` is +1.0 for matching pairs and
/// -1.0 for non-matching pairs, mirroring the paper's regression targets.
struct Example {
  ScoredFeatures features;
  double target = 0.0;
};

/// Flattens features for model consumption. Weighted-average models see
/// only the similarity scores; the random forest sees similarities and
/// confidences ("as features we include both similarity and confidence
/// scores"). Missing similarities (-1) are imputed to 0.
std::vector<double> FlattenForForest(const ScoredFeatures& f);
std::vector<double> SimsOnly(const ScoredFeatures& f);

/// Upsamples the minority class (by duplicating random minority examples)
/// until matching and non-matching examples are balanced, as the paper does
/// before learning ("in all cases we upsample to balance the number of
/// matching and non-matching row pairs").
std::vector<Example> BalanceByUpsampling(std::vector<Example> examples,
                                         util::Rng& rng);

}  // namespace ltee::ml

#endif  // LTEE_ML_DATASET_H_
