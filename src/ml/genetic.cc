#include "ml/genetic.h"

#include <algorithm>

namespace ltee::ml {

namespace {

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

}  // namespace

std::vector<double> GeneticMaximize(
    size_t dim,
    const std::function<double(const std::vector<double>&)>& fitness,
    util::Rng& rng, const GeneticOptions& options) {
  const int pop_size = options.population_size;
  std::vector<std::vector<double>> population(pop_size);
  std::vector<double> scores(pop_size);
  for (auto& genome : population) {
    genome.resize(dim);
    for (auto& g : genome) g = rng.NextDouble();
  }
  for (int i = 0; i < pop_size; ++i) scores[i] = fitness(population[i]);

  auto tournament = [&]() -> int {
    int best = static_cast<int>(rng.NextBounded(pop_size));
    for (int t = 1; t < options.tournament_size; ++t) {
      int cand = static_cast<int>(rng.NextBounded(pop_size));
      if (scores[cand] > scores[best]) best = cand;
    }
    return best;
  };

  for (int gen = 0; gen < options.generations; ++gen) {
    // Elitism: carry the best genomes over unchanged.
    std::vector<int> order(pop_size);
    for (int i = 0; i < pop_size; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return scores[a] > scores[b]; });

    std::vector<std::vector<double>> next;
    next.reserve(pop_size);
    for (int e = 0; e < options.elitism && e < pop_size; ++e) {
      next.push_back(population[order[e]]);
    }
    while (static_cast<int>(next.size()) < pop_size) {
      const auto& a = population[tournament()];
      const auto& b = population[tournament()];
      std::vector<double> child(dim);
      if (rng.NextBool(options.crossover_rate)) {
        // BLX-alpha blend crossover.
        constexpr double kAlpha = 0.3;
        for (size_t d = 0; d < dim; ++d) {
          double lo = std::min(a[d], b[d]), hi = std::max(a[d], b[d]);
          double span = hi - lo;
          double sample_lo = lo - kAlpha * span, sample_hi = hi + kAlpha * span;
          child[d] = Clamp01(sample_lo +
                             rng.NextDouble() * (sample_hi - sample_lo));
        }
      } else {
        child = a;
      }
      for (size_t d = 0; d < dim; ++d) {
        if (rng.NextBool(options.mutation_rate)) {
          child[d] = Clamp01(child[d] +
                             rng.NextGaussian() * options.mutation_sigma);
        }
      }
      next.push_back(std::move(child));
    }
    population = std::move(next);
    for (int i = 0; i < pop_size; ++i) scores[i] = fitness(population[i]);
  }

  int best = 0;
  for (int i = 1; i < pop_size; ++i) {
    if (scores[i] > scores[best]) best = i;
  }
  return population[best];
}

}  // namespace ltee::ml
