#ifndef LTEE_ML_GENETIC_H_
#define LTEE_ML_GENETIC_H_

#include <functional>
#include <vector>

#include "util/random.h"

namespace ltee::ml {

/// Options for the real-coded genetic optimizer used to learn metric
/// weights and thresholds (Section 3.2, "we utilize a genetic algorithm
/// that attempts to maximize the matching performance on the learning
/// set").
struct GeneticOptions {
  int population_size = 32;
  int generations = 36;
  int tournament_size = 3;
  double crossover_rate = 0.9;
  double mutation_rate = 0.15;
  double mutation_sigma = 0.12;
  int elitism = 2;
};

/// Maximizes `fitness` over vectors in [0,1]^dim with tournament selection,
/// blend (BLX-alpha) crossover and Gaussian mutation. Returns the best
/// genome found.
std::vector<double> GeneticMaximize(
    size_t dim, const std::function<double(const std::vector<double>&)>& fitness,
    util::Rng& rng, const GeneticOptions& options = {});

}  // namespace ltee::ml

#endif  // LTEE_ML_GENETIC_H_
