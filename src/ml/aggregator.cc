#include "ml/aggregator.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace ltee::ml {

void ScoreAggregator::Train(std::vector<Example> examples,
                            AggregationKind kind, util::Rng& rng) {
  kind_ = kind;
  trained_ = true;
  if (examples.empty()) return;
  num_metrics_ = examples.front().features.sims.size();
  examples = BalanceByUpsampling(std::move(examples), rng);

  if (kind == AggregationKind::kWeightedAverage ||
      kind == AggregationKind::kCombined) {
    wa_.Train(examples, rng);
  }
  if (kind == AggregationKind::kRandomForest ||
      kind == AggregationKind::kCombined) {
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    x.reserve(examples.size());
    y.reserve(examples.size());
    for (const auto& ex : examples) {
      x.push_back(FlattenForForest(ex.features));
      y.push_back(ex.target);
    }
    forest_.TuneBagFraction(x, y, rng);
  }
  if (kind == AggregationKind::kCombined) {
    // Learn the blend weight by a 1-D sweep maximizing pair F1 (equivalent
    // to the GA on a single weight but cheaper and deterministic).
    double best_f1 = -1.0, best_w = 0.5;
    for (int step = 0; step <= 20; ++step) {
      const double w = step / 20.0;
      size_t tp = 0, fp = 0, fn = 0;
      for (const auto& ex : examples) {
        const double s = w * wa_.Score(ex.features) +
                         (1.0 - w) * forest_.Predict(
                                         FlattenForForest(ex.features));
        const bool predicted = s > 0.0;
        const bool actual = ex.target > 0.0;
        if (predicted && actual) ++tp;
        else if (predicted && !actual) ++fp;
        else if (!predicted && actual) ++fn;
      }
      const double p = tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
      const double r = tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
      const double f1 = util::F1(p, r);
      if (f1 > best_f1) {
        best_f1 = f1;
        best_w = w;
      }
    }
    blend_wa_ = best_w;
  }
}

double ScoreAggregator::Score(const ScoredFeatures& f) const {
  switch (kind_) {
    case AggregationKind::kWeightedAverage:
      return wa_.Score(f);
    case AggregationKind::kRandomForest:
      return std::clamp(forest_.Predict(FlattenForForest(f)), -1.0, 1.0);
    case AggregationKind::kCombined:
      return std::clamp(
          blend_wa_ * wa_.Score(f) +
              (1.0 - blend_wa_) * forest_.Predict(FlattenForForest(f)),
          -1.0, 1.0);
  }
  return 0.0;
}

std::vector<double> ScoreAggregator::MetricImportances() const {
  std::vector<double> out(num_metrics_, 0.0);
  if (num_metrics_ == 0) return out;

  std::vector<double> forest_imp(num_metrics_, 0.0);
  const auto& raw = forest_.FeatureImportances();
  if (!raw.empty()) {
    // Forest features are [sims..., confs...]; pool both per metric.
    for (size_t m = 0; m < num_metrics_; ++m) {
      forest_imp[m] += raw[m];
      if (num_metrics_ + m < raw.size()) forest_imp[m] += raw[num_metrics_ + m];
    }
    double s = 0.0;
    for (double v : forest_imp) s += v;
    if (s > 0.0) {
      for (double& v : forest_imp) v /= s;
    }
  }
  const auto wa_weights = wa_.NormalizedWeights();

  for (size_t m = 0; m < num_metrics_; ++m) {
    double f = forest_imp[m];
    double w = m < wa_weights.size() ? wa_weights[m] : 0.0;
    switch (kind_) {
      case AggregationKind::kWeightedAverage:
        out[m] = w;
        break;
      case AggregationKind::kRandomForest:
        out[m] = f;
        break;
      case AggregationKind::kCombined:
        out[m] = 0.5 * (f + w);
        break;
    }
  }
  return out;
}

}  // namespace ltee::ml
