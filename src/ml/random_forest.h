#ifndef LTEE_ML_RANDOM_FOREST_H_
#define LTEE_ML_RANDOM_FOREST_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace ltee::ml {

/// Hyper-parameters of the bagged regression forest. The paper learns the
/// hyper-parameters "by using the out-of-bag error with different
/// out-of-bag rates on the learning set"; TuneBagFraction() mirrors that.
struct RandomForestOptions {
  int num_trees = 40;
  int max_depth = 14;
  int min_samples_leaf = 2;
  /// Fraction of features tried at each split (0 selects sqrt(#features)).
  double feature_fraction = 0.0;
  /// Bootstrap sample size as a fraction of the training set; the
  /// complement is the out-of-bag rate.
  double bag_fraction = 1.0;
};

/// Random forest regression (Breiman 2001) from scratch: CART variance-
/// reduction trees over bootstrap samples, prediction by averaging,
/// out-of-bag error estimation, and impurity-based feature importances
/// (used for the "MI" columns of Tables 7 and 8).
class RandomForestRegressor {
 public:
  explicit RandomForestRegressor(RandomForestOptions options = {})
      : options_(options) {}

  /// Fits the forest on row-major `features` with `targets`.
  void Train(const std::vector<std::vector<double>>& features,
             const std::vector<double>& targets, util::Rng& rng);

  /// Mean prediction across trees.
  double Predict(const std::vector<double>& features) const;

  /// Mean squared error on out-of-bag samples; NaN-free (returns 0 when no
  /// sample was ever out of bag).
  double OobError() const { return oob_error_; }

  /// Per-feature importance: total variance reduction attributed to splits
  /// on that feature, normalized to sum to 1.
  const std::vector<double>& FeatureImportances() const {
    return importances_;
  }

  /// Tries each candidate bag fraction, keeps the model with the lowest
  /// out-of-bag error, and returns the chosen fraction.
  double TuneBagFraction(const std::vector<std::vector<double>>& features,
                         const std::vector<double>& targets, util::Rng& rng,
                         const std::vector<double>& candidates = {0.7, 1.0});

  bool trained() const { return !trees_.empty(); }
  const RandomForestOptions& options() const { return options_; }

 private:
  struct Node {
    int feature = -1;       // -1 for leaf
    double threshold = 0.0;
    double value = 0.0;     // leaf prediction
    int32_t left = -1;
    int32_t right = -1;
  };
  struct Tree {
    std::vector<Node> nodes;
    double PredictOne(const std::vector<double>& x) const;
  };

  int32_t BuildNode(Tree& tree, const std::vector<std::vector<double>>& x,
                    const std::vector<double>& y, std::vector<int>& indices,
                    int begin, int end, int depth, util::Rng& rng);

  RandomForestOptions options_;
  std::vector<Tree> trees_;
  std::vector<std::vector<int>> oob_indices_;  // per tree
  std::vector<double> importances_;
  double oob_error_ = 0.0;
  size_t num_features_ = 0;
};

}  // namespace ltee::ml

#endif  // LTEE_ML_RANDOM_FOREST_H_
