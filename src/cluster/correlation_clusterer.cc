#include "cluster/correlation_clusterer.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/thread_pool.h"

namespace ltee::cluster {

namespace {

/// Mutable clustering state shared by both phases.
struct State {
  std::vector<int> cluster_of;                 // item -> cluster id
  std::vector<std::vector<int>> members;       // cluster id -> items
  std::vector<std::unordered_set<int32_t>> cluster_blocks;  // cluster -> blocks

  int NewCluster() {
    members.emplace_back();
    cluster_blocks.emplace_back();
    return static_cast<int>(members.size()) - 1;
  }

  void Assign(int item, int cluster,
              const std::vector<std::vector<int32_t>>& blocks_of) {
    cluster_of[item] = cluster;
    members[cluster].push_back(item);
    for (int32_t b : blocks_of[item]) cluster_blocks[cluster].insert(b);
  }
};

double SumSimilarity(int item, const std::vector<int>& cluster_members,
                     const SimilarityFn& sim) {
  double s = 0.0;
  for (int other : cluster_members) {
    if (other != item) s += sim(item, other);
  }
  return s;
}

}  // namespace

ClusteringResult ClusterCorrelation(
    size_t num_items, const SimilarityFn& similarity,
    const std::vector<std::vector<int32_t>>& blocks_of,
    const ClusteringOptions& options) {
  State state;
  state.cluster_of.assign(num_items, -1);

  // block id -> clusters currently containing an item of that block.
  std::unordered_map<int32_t, std::vector<int>> clusters_by_block;

  util::ThreadPool pool(options.num_threads);

  // ---- Phase 1: parallel greedy assignment -----------------------------
  size_t next = 0;
  while (next < num_items) {
    const size_t begin = next;
    const size_t end = std::min(num_items, begin + options.batch_size);
    next = end;
    // For each item of the batch, compute the best cluster against the
    // snapshot taken at batch start.
    std::vector<int> best_cluster(end - begin, -1);
    std::vector<double> best_score(end - begin, 0.0);
    pool.ParallelFor(end - begin, [&](size_t k) {
      const int item = static_cast<int>(begin + k);
      // Candidate clusters: those sharing a block with the item.
      std::unordered_set<int> seen;
      std::vector<int> candidates;
      for (int32_t b : blocks_of[item]) {
        auto it = clusters_by_block.find(b);
        if (it == clusters_by_block.end()) continue;
        for (int c : it->second) {
          if (seen.insert(c).second) candidates.push_back(c);
          if (candidates.size() >= options.max_candidate_clusters) break;
        }
        if (candidates.size() >= options.max_candidate_clusters) break;
      }
      double best = 0.0;
      int arg = -1;
      for (int c : candidates) {
        const double s = SumSimilarity(item, state.members[c], similarity);
        if (s > best) {
          best = s;
          arg = c;
        }
      }
      best_cluster[k] = arg;
      best_score[k] = best;
    });
    // Apply sequentially (snapshot semantics; stale choices are possible
    // and later repaired by KLj, mirroring the paper's design).
    for (size_t k = 0; k < end - begin; ++k) {
      const int item = static_cast<int>(begin + k);
      int target = best_cluster[k];
      if (target < 0) {
        target = state.NewCluster();
      }
      state.Assign(item, target, blocks_of);
      for (int32_t b : blocks_of[item]) {
        auto& list = clusters_by_block[b];
        if (std::find(list.begin(), list.end(), target) == list.end()) {
          list.push_back(target);
        }
      }
    }
  }

  // ---- Phase 2: KLj refinement -----------------------------------------
  int operations = 0;
  if (options.enable_klj) {
    for (int pass = 0; pass < options.max_klj_passes; ++pass) {
      bool changed = false;

      // (a) Splits: an item whose summed similarity to the rest of its
      // cluster is negative improves the fitness by leaving.
      for (size_t item = 0; item < num_items; ++item) {
        const int c = state.cluster_of[item];
        if (state.members[c].size() <= 1) continue;
        const double contribution =
            SumSimilarity(static_cast<int>(item), state.members[c], similarity);
        if (contribution < 0.0) {
          auto& m = state.members[c];
          m.erase(std::find(m.begin(), m.end(), static_cast<int>(item)));
          const int fresh = state.NewCluster();
          state.Assign(static_cast<int>(item), fresh, blocks_of);
          for (int32_t b : blocks_of[item]) {
            clusters_by_block[b].push_back(fresh);
          }
          changed = true;
          ++operations;
        }
      }

      // (b) Merge / move between block-sharing cluster pairs.
      // Enumerate candidate pairs once per pass.
      std::unordered_set<int64_t> considered;
      for (const auto& [block, clusters] : clusters_by_block) {
        for (size_t i = 0; i < clusters.size(); ++i) {
          const int a = clusters[i];
          if (state.members[a].empty()) continue;
          for (size_t j = i + 1; j < clusters.size(); ++j) {
            const int b = clusters[j];
            if (a == b || state.members[b].empty()) continue;
            const int lo = std::min(a, b), hi = std::max(a, b);
            const int64_t key = (static_cast<int64_t>(lo) << 32) | hi;
            if (!considered.insert(key).second) continue;

            // Gain of a full merge: sum of inter-cluster similarities.
            double merge_gain = 0.0;
            for (int x : state.members[lo]) {
              merge_gain += SumSimilarity(x, state.members[hi], similarity);
            }
            if (merge_gain > 0.0) {
              for (int x : state.members[hi]) {
                state.cluster_of[x] = lo;
                state.members[lo].push_back(x);
              }
              for (int32_t blk : state.cluster_blocks[hi]) {
                state.cluster_blocks[lo].insert(blk);
                clusters_by_block[blk].push_back(lo);
              }
              state.members[hi].clear();
              state.cluster_blocks[hi].clear();
              changed = true;
              ++operations;
              continue;
            }

            // Single-item moves in both directions.
            for (auto [from, to] : {std::pair<int, int>{lo, hi},
                                    std::pair<int, int>{hi, lo}}) {
              if (state.members[from].size() <= 1) continue;
              bool moved = true;
              while (moved && state.members[from].size() > 1) {
                moved = false;
                for (int x : state.members[from]) {
                  const double own =
                      SumSimilarity(x, state.members[from], similarity);
                  const double other =
                      SumSimilarity(x, state.members[to], similarity);
                  if (other > own && other > 0.0) {
                    auto& m = state.members[from];
                    m.erase(std::find(m.begin(), m.end(), x));
                    state.cluster_of[x] = to;
                    state.members[to].push_back(x);
                    for (int32_t blk : blocks_of[x]) {
                      state.cluster_blocks[to].insert(blk);
                      clusters_by_block[blk].push_back(to);
                    }
                    changed = true;
                    moved = true;
                    ++operations;
                    break;
                  }
                }
              }
            }
          }
        }
      }
      if (!changed) break;
    }
  }

  // ---- Compact cluster ids and compute fitness --------------------------
  ClusteringResult result;
  result.cluster_of.assign(num_items, -1);
  std::unordered_map<int, int> remap;
  for (size_t item = 0; item < num_items; ++item) {
    const int c = state.cluster_of[item];
    auto [it, inserted] = remap.emplace(c, static_cast<int>(remap.size()));
    result.cluster_of[item] = it->second;
  }
  result.num_clusters = static_cast<int>(remap.size());
  result.klj_operations = operations;

  double fitness = 0.0;
  std::vector<std::vector<int>> final_members(result.num_clusters);
  for (size_t item = 0; item < num_items; ++item) {
    final_members[result.cluster_of[item]].push_back(static_cast<int>(item));
  }
  for (const auto& m : final_members) {
    for (size_t i = 0; i < m.size(); ++i) {
      for (size_t j = i + 1; j < m.size(); ++j) {
        fitness += similarity(m[i], m[j]);
      }
    }
  }
  result.fitness = fitness;
  return result;
}

}  // namespace ltee::cluster
