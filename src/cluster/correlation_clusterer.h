#ifndef LTEE_CLUSTER_CORRELATION_CLUSTERER_H_
#define LTEE_CLUSTER_CORRELATION_CLUSTERER_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace ltee::cluster {

/// Pairwise similarity callback over item indices; must be symmetric and
/// return values in [-1, 1] (positive = same entity). Called concurrently
/// from worker threads during the greedy phase, so it must be thread-safe.
using SimilarityFn = std::function<double(int, int)>;

/// Options of the two-phase correlation clustering (Section 3.2).
struct ClusteringOptions {
  /// Worker threads for the parallel greedy phase (0 = hardware).
  size_t num_threads = 0;
  /// Items per parallel batch; within one batch assignments are computed
  /// against a frozen snapshot of the clustering (the controlled source of
  /// "errors during clustering" the KLj phase repairs).
  size_t batch_size = 256;
  /// Maximum KLj improvement sweeps.
  int max_klj_passes = 4;
  /// Upper bound on clusters examined per item in the greedy phase
  /// (blocking already restricts candidates; this is a safety cap).
  size_t max_candidate_clusters = 64;
  /// Disables the KLj refinement (for the ablation bench).
  bool enable_klj = true;
};

/// Result of a clustering run: cluster id per item (dense, 0-based) and the
/// final local fitness (sum of intra-cluster pair similarities).
struct ClusteringResult {
  std::vector<int> cluster_of;
  int num_clusters = 0;
  double fitness = 0.0;
  int klj_operations = 0;  // merges + moves + splits applied
};

/// Greedy correlation clustering with Kernighan-Lin-with-joins refinement.
///
/// Phase 1 (parallel greedy, Elsner & Charniak / Elsner & Schudy): items
/// are scanned in batches; each item is assigned to the existing cluster
/// with the highest positive summed similarity to the cluster's members,
/// or to a fresh singleton cluster when no sum is positive. Batches are
/// evaluated in parallel against a snapshot, then applied sequentially.
///
/// Phase 2 (KLj, Keuper et al.): repeatedly considers block-sharing
/// cluster pairs and applies whole-cluster merges and single-item moves,
/// plus splits of items whose contribution to their cluster is negative,
/// until no operation improves the fitness.
///
/// `blocks_of[i]` lists the block ids of item i (sorted not required).
/// Only items sharing at least one block are ever compared; pass every
/// item a common block to disable blocking.
ClusteringResult ClusterCorrelation(
    size_t num_items, const SimilarityFn& similarity,
    const std::vector<std::vector<int32_t>>& blocks_of,
    const ClusteringOptions& options = {});

}  // namespace ltee::cluster

#endif  // LTEE_CLUSTER_CORRELATION_CLUSTERER_H_
