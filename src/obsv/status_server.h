#ifndef LTEE_OBSV_STATUS_SERVER_H_
#define LTEE_OBSV_STATUS_SERVER_H_

#include <mutex>
#include <string>

#include "obsv/http_server.h"

namespace ltee::obsv {

/// Live introspection endpoints over the process-wide observability
/// state. Embedded in `ltee_cli run --status-port <p>` so a long pipeline
/// run can be watched with curl / a Prometheus scraper mid-flight:
///   GET /metrics     Prometheus text exposition 0.0.4 of util::Metrics()
///   GET /stats       rolling-window request telemetry JSON: QPS and
///                    latency p50/p95/p99 over the last 60 s, in-flight
///                    requests, cache hit ratio, snapshot version, and
///                    access-log ring occupancy
///   GET /report      latest run report JSON (404 until one is published)
///   GET /trace       Chrome trace-event JSON of the current span buffers
///   GET /provenance  published decision ledger (JSON lines); with
///                    ?entity=<substring>[&property=<name>] the lineage of
///                    the matching facts as explain-query JSON
///   GET /profile     on-demand CPU capture: ?seconds=N (0,30] and
///                    ?hz=N [1,1000], collapsed stacks as text; 503 when
///                    a capture is already in flight
///   GET /memory      on-demand heap capture (obsv::memtrack):
///                    ?seconds=N (0,30] and ?sample_kb=N [1,65536],
///                    collapsed heap profile as text; 503 while busy
///   GET /healthz     "ok" (liveness)
class StatusServer {
 public:
  /// `num_workers` sizes the underlying HttpServer's handler pool (the
  /// serving layer passes more than the introspection default).
  explicit StatusServer(size_t num_workers = 2);

  /// Binds and serves on `port` (0 picks a free one; see port()).
  bool Start(uint16_t port, std::string* error = nullptr);
  void Stop();

  bool running() const { return server_.running(); }
  uint16_t port() const { return server_.port(); }

  /// Publishes the latest run-report JSON served at /report. Thread-safe;
  /// the pipeline owner calls this when a run (or an iteration) ends.
  void PublishReport(std::string report_json);

  /// Publishes the provenance ledger (JSON lines) served at /provenance.
  void PublishProvenance(std::string ledger_jsonl);

  /// The underlying HTTP server, for registering additional endpoints
  /// (the serve layer adds its /kb/* handlers here) before Start. The
  /// reference stays valid for the StatusServer's lifetime.
  HttpServer& http() { return server_; }

 private:
  HttpServer server_;
  std::mutex report_mu_;
  std::string report_json_;
  std::string provenance_jsonl_;
};

}  // namespace ltee::obsv

#endif  // LTEE_OBSV_STATUS_SERVER_H_
