#include "obsv/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace ltee::obsv {

bool HttpGet(uint16_t port, const std::string& path, int* status,
             std::string* body, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (error != nullptr) *error = "send failed";
      ::close(fd);
      return false;
    }
    sent += static_cast<size_t>(n);
  }

  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.1 <status> ..." then headers up to the blank line.
  if (response.rfind("HTTP/", 0) != 0) {
    if (error != nullptr) *error = "malformed response";
    return false;
  }
  const size_t space = response.find(' ');
  if (space == std::string::npos) {
    if (error != nullptr) *error = "malformed status line";
    return false;
  }
  *status = std::atoi(response.c_str() + space + 1);
  size_t head_end = response.find("\r\n\r\n");
  size_t body_start;
  if (head_end != std::string::npos) {
    body_start = head_end + 4;
  } else {
    head_end = response.find("\n\n");
    if (head_end == std::string::npos) {
      if (error != nullptr) *error = "no header terminator";
      return false;
    }
    body_start = head_end + 2;
  }
  *body = response.substr(body_start);
  return true;
}

}  // namespace ltee::obsv
