#include "obsv/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/trace.h"

namespace ltee::obsv {

namespace {

/// Case-insensitive single-header lookup in a raw response head.
std::string HeaderValue(const std::string& head, const std::string& name) {
  size_t pos = 0;
  while (pos < head.size()) {
    size_t end = head.find('\n', pos);
    if (end == std::string::npos) end = head.size();
    size_t len = end - pos;
    if (len > 0 && head[pos + len - 1] == '\r') --len;
    const size_t colon = head.find(':', pos);
    if (colon != std::string::npos && colon < pos + len &&
        colon - pos == name.size()) {
      bool match = true;
      for (size_t i = 0; i < name.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(head[pos + i])) !=
            std::tolower(static_cast<unsigned char>(name[i]))) {
          match = false;
          break;
        }
      }
      if (match) {
        size_t value_start = colon + 1;
        while (value_start < pos + len &&
               (head[value_start] == ' ' || head[value_start] == '\t')) {
          ++value_start;
        }
        return head.substr(value_start, pos + len - value_start);
      }
    }
    pos = end + 1;
  }
  return "";
}

}  // namespace

bool HttpGet(uint16_t port, const std::string& path, int* status,
             std::string* body, std::string* error) {
  return HttpGet(port, path, HttpGetOptions{}, status, body, nullptr, error);
}

bool HttpGet(uint16_t port, const std::string& path,
             const HttpGetOptions& options, int* status, std::string* body,
             std::string* response_traceparent, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return false;
  }

  // Propagate the trace: an explicit traceparent wins; otherwise the
  // calling thread's current context (if any) rides along, so the server
  // hop joins the same trace.
  std::string traceparent = options.traceparent;
  if (traceparent.empty() && util::trace::HasCurrentContext()) {
    traceparent = "00-" + util::trace::CurrentTraceId() + "-" +
                  util::trace::CurrentSpanId() + "-01";
  }
  std::string request = "GET " + path +
                        " HTTP/1.1\r\nHost: localhost\r\n"
                        "Connection: close\r\n";
  if (!traceparent.empty()) {
    request += "traceparent: " + traceparent + "\r\n";
  }
  request += "\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (error != nullptr) *error = "send failed";
      ::close(fd);
      return false;
    }
    sent += static_cast<size_t>(n);
  }

  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.1 <status> ..." then headers up to the blank line.
  if (response.rfind("HTTP/", 0) != 0) {
    if (error != nullptr) *error = "malformed response";
    return false;
  }
  const size_t space = response.find(' ');
  if (space == std::string::npos) {
    if (error != nullptr) *error = "malformed status line";
    return false;
  }
  if (status != nullptr) *status = std::atoi(response.c_str() + space + 1);
  size_t head_end = response.find("\r\n\r\n");
  size_t body_start;
  if (head_end != std::string::npos) {
    body_start = head_end + 4;
  } else {
    head_end = response.find("\n\n");
    if (head_end == std::string::npos) {
      if (error != nullptr) *error = "no header terminator";
      return false;
    }
    body_start = head_end + 2;
  }
  if (response_traceparent != nullptr) {
    *response_traceparent =
        HeaderValue(response.substr(0, head_end), "traceparent");
  }
  if (body != nullptr) *body = response.substr(body_start);
  return true;
}

}  // namespace ltee::obsv
