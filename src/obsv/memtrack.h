#ifndef LTEE_OBSV_MEMTRACK_H_
#define LTEE_OBSV_MEMTRACK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obsv/profiler.h"

namespace ltee::obsv {

/// In-process memory observability, the heap-side twin of the sampling
/// CPU profiler (obsv::profiler). Every `operator new`/`operator delete`
/// in the process is interposed with a 16-byte allocation header; while
/// tracking is enabled (the LTEE_MEMTRACK environment variable, the
/// `ltee_cli run --memtrack` flag, or SetMemTrackingEnabled) each
/// allocation updates relaxed-atomic live/peak/cumulative byte and
/// allocation counters.
///
/// Span-attributed accounting is a second, separately-switched level:
/// while enabled (SetSpanAccountingEnabled, or automatically for the
/// duration of a heap-profiler session) each allocation additionally
/// attributes its bytes to the calling thread's innermost open
/// util::trace span via the signal-safe span mirrors. Keeping it out of
/// the counters-only mode is what holds that mode's overhead inside the
/// gated budget — attribution roughly triples the per-allocation cost.
///
/// On top of the counters, a heap-profiler session samples
/// every ~N allocated bytes, capturing the allocation stack
/// (util::CaptureStack) into lock-free tid-sharded tables; collection
/// exports a flamegraph.pl-compatible collapsed heap profile
/// (`span:NAME;frames... LIVE_BYTES`) whose header reuses the
/// `# ltee-profile` prefix so ParseCollapsedProfile applies unchanged.
///
/// Re-entrancy and safety rules (also in DESIGN.md):
///  - The hooks never allocate, never lock, and never recurse: a
///    thread-local guard makes any nested allocation (symbolizer warm-up,
///    sample-table growth) bypass accounting while still getting a
///    header, so every pointer freed later is interpretable.
///  - The header is unconditional; enabling/disabling tracking mid-run
///    can never mismatch an allocation with its free (a counted bit in
///    the header keeps the live counters exact across transitions).
///  - Under AddressSanitizer (LTEE_SANITIZE) the interposition is
///    compiled out entirely — ASan owns malloc — and
///    MemTrackingSupported() reports false.

/// True when the allocator interposition is compiled in (Linux, no
/// sanitizer). When false every other call is a cheap no-op and the
/// counters read zero.
bool MemTrackingSupported();

/// Runtime switch for the counters (totals and per-stage deltas only —
/// no span attribution). Also settable at process start via
/// LTEE_MEMTRACK=1.
void SetMemTrackingEnabled(bool enabled);
bool MemTrackingEnabled();

/// Runtime switch for span-attributed accounting; needs the counters on
/// to take effect. Enabling also turns on util::trace span tracking
/// (reference counted) so the allocation hook sees span names. Heap
/// profiler sessions enable this automatically for their duration —
/// call it directly only to read MemtrackSpanBytes without a session.
void SetSpanAccountingEnabled(bool enabled);
bool SpanAccountingEnabled();

/// Process-wide allocation counters. Live/peak cover only allocations
/// made while tracking was enabled (the counted bit keeps frees
/// symmetric); cumulative counters are monotone since first enable.
struct MemtrackTotals {
  uint64_t live_bytes = 0;
  uint64_t live_allocs = 0;
  uint64_t peak_live_bytes = 0;
  uint64_t cum_bytes = 0;
  uint64_t cum_allocs = 0;
};
MemtrackTotals GetMemtrackTotals();

/// Per-span byte accounting from the fixed lock-free span table.
struct SpanBytes {
  std::string span;
  /// Still-live bytes first allocated under this span (floor 0).
  uint64_t live_bytes = 0;
  /// All bytes ever allocated under this span while tracking.
  uint64_t cum_bytes = 0;
  uint64_t allocs = 0;
};
/// Sorted by cumulative bytes descending.
std::vector<SpanBytes> MemtrackSpanBytes();

/// Peak resident set size of this process in bytes: /proc/self/status
/// VmHWM, falling back to getrusage(ru_maxrss). Zero only when both
/// sources fail. Works with or without memtrack support.
uint64_t ReadPeakRssBytes();

// ---------------------------------------------------------------------------
// Heap-profiler session (sampled allocation stacks)

struct HeapProfilerOptions {
  /// Sample roughly one allocation per this many allocated bytes, per
  /// thread. Clamped to [1, 1 << 30]. Small values sample every
  /// allocation — what the tests use for determinism.
  size_t sample_bytes = 64 * 1024;
  /// Capacity of each tid-sharded sample table; a full shard counts
  /// further samples as dropped, the hook never blocks or reallocates.
  size_t table_capacity = 16384;
};

/// Opens the single global heap-profile session: arms sampling and (if
/// not already on) enables tracking for the duration. Refuses — never
/// queues — when a session is already open. Mirrors StartProfiler.
bool StartHeapProfiler(const HeapProfilerOptions& options,
                       std::string* error);

/// True between a successful StartHeapProfiler and StopHeapProfiler.
bool HeapProfilerActive();

/// Disarms sampling; sampled live bytes keep decrementing as their
/// allocations are freed, so a later Collect reports current liveness.
void StopHeapProfiler();

struct HeapProfileStats {
  uint64_t samples = 0;
  uint64_t dropped = 0;
  size_t sample_kb = 0;
  double duration_s = 0.0;
};
HeapProfileStats CurrentHeapProfileStats();

/// Lifetime totals across all sessions, for /stats.
struct MemtrackCaptureTotals {
  uint64_t captures = 0;
  uint64_t samples = 0;
  uint64_t dropped = 0;
};
MemtrackCaptureTotals GetMemtrackCaptureTotals();

/// Stops (if needed) and serializes the session: a `# ltee-profile
/// heap=1 sample_kb=... samples=... dropped=... duration_s=...
/// live_bytes=... live_allocs=... peak_rss_kb=...` header, one
/// `# ltee-memtrack-span NAME live=B cum=B allocs=N` comment line per
/// attributed span, then collapsed stack lines weighted by LIVE bytes
/// (fully-freed samples are omitted). Callable after a crash from the
/// crash-flush path; sampling must already be stopped then.
std::string CollectCollapsedHeapProfile();

/// Clears sampled stacks and closes the session so a new Start succeeds.
void ResetHeapProfiler();

/// One-shot convenience for the /memory endpoint and tests:
/// Start(sample_kb) → sleep `seconds` → Collect → Reset. Fails when a
/// session is already open (the endpoint then answers 503).
bool CaptureHeapProfile(double seconds, size_t sample_kb,
                        std::string* collapsed, std::string* error);

// ---------------------------------------------------------------------------
// Analysis of a collapsed heap profile (the `analyze-memory` core).
// Stack lines parse with the CPU parser (ParseCollapsedProfile); the
// helpers below recover the heap-specific header and span table.

struct HeapProfileHeader {
  bool is_heap = false;
  size_t sample_kb = 0;
  uint64_t live_bytes = 0;
  uint64_t live_allocs = 0;
  uint64_t peak_rss_kb = 0;
  /// Parsed `# ltee-memtrack-span` lines, order preserved.
  std::vector<SpanBytes> spans;
};

/// Scans the text for the heap header and span comment lines. Returns
/// false when no `heap=1` header is present (i.e. a CPU profile).
bool ParseHeapProfileHeader(const std::string& text,
                            HeapProfileHeader* out);

/// Human-readable report: totals, per-span live/cumulative bytes, and
/// the top-N allocation stacks by live sampled bytes.
std::string HeapAnalysisToText(const ProfileAnalysis& analysis,
                               const HeapProfileHeader& header,
                               size_t top_n = 20);

/// Same content as one JSON object: {"sample_kb","samples","dropped",
/// "duration_s","live_bytes","live_allocs","peak_rss_kb",
/// "spans":[{name,live_bytes,cum_bytes,allocs}],
/// "top_sites":[{name,self_bytes,total_bytes,self_pct}]}.
std::string HeapAnalysisToJson(const ProfileAnalysis& analysis,
                               const HeapProfileHeader& header,
                               size_t top_n = 20);

}  // namespace ltee::obsv

#endif  // LTEE_OBSV_MEMTRACK_H_
