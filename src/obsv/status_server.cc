#include "obsv/status_server.h"

#include "util/metrics.h"
#include "util/prometheus.h"
#include "util/trace.h"

namespace ltee::obsv {

StatusServer::StatusServer() {
  server_.Handle("/healthz", [] {
    HttpResponse response;
    response.body = "ok\n";
    return response;
  });
  server_.Handle("/metrics", [] {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = util::RenderPrometheusText(util::Metrics().Snapshot());
    return response;
  });
  server_.Handle("/trace", [] {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = util::trace::ExportChromeTrace();
    return response;
  });
  server_.Handle("/report", [this] {
    HttpResponse response;
    std::lock_guard<std::mutex> lock(report_mu_);
    if (report_json_.empty()) {
      response.status = 404;
      response.body = "no report published yet\n";
    } else {
      response.content_type = "application/json";
      response.body = report_json_;
    }
    return response;
  });
}

bool StatusServer::Start(uint16_t port, std::string* error) {
  return server_.Start(port, error);
}

void StatusServer::Stop() { server_.Stop(); }

void StatusServer::PublishReport(std::string report_json) {
  std::lock_guard<std::mutex> lock(report_mu_);
  report_json_ = std::move(report_json);
}

}  // namespace ltee::obsv
