#include "obsv/status_server.h"

#include <cstdlib>

#include "obsv/memtrack.h"
#include "obsv/profiler.h"
#include "obsv/telemetry.h"
#include "prov/explain.h"
#include "util/metrics.h"
#include "util/prometheus.h"
#include "util/trace.h"

namespace ltee::obsv {

StatusServer::StatusServer(size_t num_workers) : server_(num_workers) {
  server_.Handle("/healthz", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok\n";
    return response;
  });
  server_.Handle("/metrics", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = util::RenderPrometheusText(util::Metrics().Snapshot());
    return response;
  });
  server_.Handle("/stats", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = RenderStatsJson(server_.in_flight());
    return response;
  });
  server_.Handle("/trace", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = util::trace::ExportChromeTrace();
    return response;
  });
  server_.Handle("/profile", [](const HttpRequest& request) {
    HttpResponse response;
    // Bounded on-demand capture: a worker thread profiles the whole
    // process for `seconds`, then streams the collapsed stacks.
    // Concurrent captures are capped at one — the second caller gets 503
    // and retries, it is never queued behind a foreign capture.
    double seconds = 1.0;
    int hz = 99;
    const std::string seconds_param = QueryParam(request.query, "seconds");
    if (!seconds_param.empty()) {
      char* end = nullptr;
      seconds = std::strtod(seconds_param.c_str(), &end);
      if (end == nullptr || *end != '\0' || !(seconds > 0.0) ||
          seconds > 30.0) {
        response.status = 400;
        response.body = "seconds must be a number in (0, 30]\n";
        return response;
      }
    }
    const std::string hz_param = QueryParam(request.query, "hz");
    if (!hz_param.empty()) {
      char* end = nullptr;
      const long parsed = std::strtol(hz_param.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || parsed < 1 || parsed > 1000) {
        response.status = 400;
        response.body = "hz must be an integer in [1, 1000]\n";
        return response;
      }
      hz = static_cast<int>(parsed);
    }
    std::string collapsed;
    std::string error;
    if (!CaptureProfile(seconds, hz, &collapsed, &error)) {
      response.status = 503;
      response.body = error + "\n";
      return response;
    }
    response.content_type = "text/plain; charset=utf-8";
    response.body = std::move(collapsed);
    return response;
  });
  server_.Handle("/memory", [](const HttpRequest& request) {
    HttpResponse response;
    // Heap twin of /profile: sample allocation stacks for `seconds`,
    // one sample per `sample_kb` allocated kilobytes per thread, then
    // stream the collapsed heap profile. One capture at a time; a
    // concurrent caller gets 503, never queued.
    double seconds = 1.0;
    size_t sample_kb = 64;
    const std::string seconds_param = QueryParam(request.query, "seconds");
    if (!seconds_param.empty()) {
      char* end = nullptr;
      seconds = std::strtod(seconds_param.c_str(), &end);
      if (end == nullptr || *end != '\0' || !(seconds > 0.0) ||
          seconds > 30.0) {
        response.status = 400;
        response.body = "seconds must be a number in (0, 30]\n";
        return response;
      }
    }
    const std::string sample_param = QueryParam(request.query, "sample_kb");
    if (!sample_param.empty()) {
      char* end = nullptr;
      const long parsed = std::strtol(sample_param.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || parsed < 1 || parsed > 65536) {
        response.status = 400;
        response.body = "sample_kb must be an integer in [1, 65536]\n";
        return response;
      }
      sample_kb = static_cast<size_t>(parsed);
    }
    std::string collapsed;
    std::string error;
    if (!CaptureHeapProfile(seconds, sample_kb, &collapsed, &error)) {
      response.status = 503;
      response.body = error + "\n";
      return response;
    }
    response.content_type = "text/plain; charset=utf-8";
    response.body = std::move(collapsed);
    return response;
  });
  server_.Handle("/report", [this](const HttpRequest&) {
    HttpResponse response;
    std::lock_guard<std::mutex> lock(report_mu_);
    if (report_json_.empty()) {
      response.status = 404;
      response.body = "no report published yet\n";
    } else {
      response.content_type = "application/json";
      response.body = report_json_;
    }
    return response;
  });
  server_.Handle("/provenance", [this](const HttpRequest& request) {
    HttpResponse response;
    std::string ledger;
    {
      std::lock_guard<std::mutex> lock(report_mu_);
      ledger = provenance_jsonl_;
    }
    if (ledger.empty()) {
      response.status = 404;
      response.body = "no provenance ledger published yet\n";
      return response;
    }
    const std::string entity = QueryParam(request.query, "entity");
    if (entity.empty()) {
      // No filter: the raw JSON-lines ledger.
      response.content_type = "application/x-ndjson";
      response.body = std::move(ledger);
      return response;
    }
    prov::ExplainOptions options;
    options.entity = entity;
    options.property = QueryParam(request.query, "property");
    options.json = true;
    const prov::ExplainResult result = prov::Explain(ledger, options);
    if (!result.ok) {
      response.status = 500;
      response.body = result.error + "\n";
      return response;
    }
    response.content_type = "application/json";
    response.body = result.output;
    return response;
  });
}

bool StatusServer::Start(uint16_t port, std::string* error) {
  return server_.Start(port, error);
}

void StatusServer::Stop() { server_.Stop(); }

void StatusServer::PublishReport(std::string report_json) {
  std::lock_guard<std::mutex> lock(report_mu_);
  report_json_ = std::move(report_json);
}

void StatusServer::PublishProvenance(std::string ledger_jsonl) {
  std::lock_guard<std::mutex> lock(report_mu_);
  provenance_jsonl_ = std::move(ledger_jsonl);
}

}  // namespace ltee::obsv
