#ifndef LTEE_OBSV_PROFILER_H_
#define LTEE_OBSV_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ltee::obsv {

/// In-process sampling CPU profiler. A POSIX interval timer
/// (ITIMER_PROF) delivers SIGPROF on process CPU time; the
/// async-signal-safe handler captures the interrupted thread's raw stack
/// (util::CaptureStack) plus its innermost tracked span name and request
/// trace id (the signal-safe mirrors in util::trace) into lock-free
/// thread-sharded sample rings. Symbolization, aggregation, and all
/// allocation happen only at collect time, after sampling has stopped.
///
/// One profiler per process: Start/Stop guard a single global capture.
/// The /profile endpoint and CaptureProfile serialize on that — a second
/// concurrent capture is refused, never queued.

struct ProfilerOptions {
  /// Samples per second of process CPU time. Clamped to [1, 1000].
  int hz = 99;
  /// Capacity of each of the per-thread-shard sample rings. A shard that
  /// fills up counts further samples as dropped — the handler never
  /// blocks and never reallocates. The default holds ~2.5 minutes of
  /// 99 Hz samples per shard (~60 MB across all shards, allocated only
  /// when profiling starts).
  size_t ring_capacity = 16384;
};

/// Arms the SIGPROF handler and interval timer. Also turns on
/// util::trace span tracking for the duration so samples carry span
/// names. Returns false (with `error`) when a capture is already active
/// or the platform lacks stack-capture support.
bool StartProfiler(const ProfilerOptions& options, std::string* error);

/// True between a successful StartProfiler and the matching StopProfiler.
bool ProfilerActive();

/// Disarms the timer and handler, restores the previous SIGPROF
/// disposition, and leaves the collected samples in place for
/// CollectCollapsedProfile. Idempotent.
void StopProfiler();

/// Counters of the current (or just-stopped) capture.
struct ProfileStats {
  uint64_t samples = 0;
  uint64_t dropped = 0;
  int hz = 0;
  double duration_s = 0.0;
};
ProfileStats CurrentProfileStats();

/// Cumulative across all captures in this process (feeds /stats).
struct ProfilerTotals {
  uint64_t captures = 0;
  uint64_t samples = 0;
  uint64_t dropped = 0;
};
ProfilerTotals GetProfilerTotals();

/// Symbolizes and aggregates the collected samples into collapsed-stack
/// text: `# ltee-profile hz=.. samples=.. dropped=.. duration_s=..`
/// header comments followed by flamegraph.pl-compatible lines
/// `span:NAME;root_frame;...;leaf_frame COUNT` (root first, count last,
/// samples with no open span use `span:(none)`). Call after StopProfiler;
/// collecting while sampling is active stops it first.
std::string CollectCollapsedProfile();

/// Drops all collected samples and per-capture counters (cumulative
/// totals survive). Must not be called while sampling is active.
void ResetProfiler();

/// Bounded on-demand capture: start at `hz`, sample for `seconds` of
/// wall time, stop, and return the collapsed profile. Refuses (returns
/// false with `error`) when another capture is active — the caller maps
/// that to 503. Used by the /profile endpoint and tests.
bool CaptureProfile(double seconds, int hz, std::string* collapsed,
                    std::string* error);

/// Parsed + aggregated view of a collapsed profile, shared by
/// `ltee_cli analyze-profile`, `ltee_top --profile`, and tests.
struct ProfileAnalysis {
  int hz = 0;
  uint64_t samples = 0;
  uint64_t dropped = 0;
  double duration_s = 0.0;

  struct FrameStat {
    std::string name;
    /// Samples with this frame at the leaf (the CPU was in it).
    uint64_t self = 0;
    /// Samples with this frame anywhere on the stack.
    uint64_t total = 0;
  };
  /// Every distinct frame, sorted by self descending (total breaks ties).
  std::vector<FrameStat> frames;

  struct SpanStat {
    std::string name;
    uint64_t samples = 0;
    /// Share of all samples, in percent.
    double pct = 0.0;
  };
  /// Per-span CPU attribution, sorted by samples descending.
  std::vector<SpanStat> spans;
};

/// Parses collapsed-stack text (as produced by CollectCollapsedProfile).
/// Unknown `#` headers are ignored; a malformed stack line fails the
/// parse. An empty profile (headers only) parses successfully with zero
/// frames.
bool ParseCollapsedProfile(const std::string& text, ProfileAnalysis* out,
                           std::string* error);

/// Human-readable report: capture header, top-N functions by self
/// samples, and the per-span CPU breakdown.
std::string ProfileAnalysisToText(const ProfileAnalysis& analysis,
                                  size_t top_n = 20);

/// Same content as one JSON object: {"hz","samples","dropped",
/// "duration_s","top_functions":[{name,self,total,self_pct}],
/// "spans":[{name,samples,pct}]}.
std::string ProfileAnalysisToJson(const ProfileAnalysis& analysis,
                                  size_t top_n = 20);

/// Collapsed-format escaping shared by every profile exporter (CPU and
/// heap): strips the parameter list from demangled C++ names (keeping
/// "operator()"'s parens) and replaces the two reserved characters —
/// ';' separates frames, ' ' separates the trailing count.
std::string CollapsedFrameName(const std::string& raw);
std::string CollapsedSpanName(const char* span);

}  // namespace ltee::obsv

#endif  // LTEE_OBSV_PROFILER_H_
