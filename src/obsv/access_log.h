#ifndef LTEE_OBSV_ACCESS_LOG_H_
#define LTEE_OBSV_ACCESS_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ltee::obsv {

/// One served HTTP request as the access log records it: what was asked,
/// how it went, how long each stage took, and which trace it belongs to.
struct AccessEntry {
  int64_t unix_ms = 0;      // wall-clock completion time
  std::string method;
  std::string target;       // path including the query string
  int status = 0;
  double total_ms = 0.0;    // read + handle + write
  double read_ms = 0.0;     // socket read + request parse
  double handle_ms = 0.0;   // handler execution
  double write_ms = 0.0;    // response serialization + send
  std::string trace_id;     // the request's TraceContext trace id
  size_t response_bytes = 0;

  /// One JSON object (no trailing newline) with every field above.
  std::string ToJson() const;
};

/// Fixed-capacity in-memory ring of the most recent requests. Every
/// served request is recorded; requests slower than the slow threshold
/// are additionally emitted as a WARNING log line carrying the full
/// per-stage timing, so the one request that blew the p99 leaves a
/// durable record even when the ring has long rotated past it. The ring
/// itself is exported over /stats (summary), by crash_flush on abnormal
/// exit, and by `ltee_cli serve --access-log FILE` on shutdown.
class AccessLog {
 public:
  explicit AccessLog(size_t capacity = 1024);

  /// Requests at or above this total duration log a WARNING with stage
  /// timings and count into slow_count(). <= 0 disables slow logging.
  void SetSlowThresholdMs(double ms);
  double slow_threshold_ms() const;

  void Record(AccessEntry entry);

  /// The buffered entries, oldest first. Copies out under the lock.
  std::vector<AccessEntry> Entries() const;

  /// Every buffered entry as JSON lines, oldest first.
  std::string ToJsonLines() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t total_recorded() const;
  uint64_t slow_count() const;

  void Clear();

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::vector<AccessEntry> ring_;
  size_t next_ = 0;           // ring insertion cursor
  uint64_t total_ = 0;
  uint64_t slow_ = 0;
  double slow_threshold_ms_ = 250.0;
};

/// The process-wide access log every HttpServer records into. Capacity
/// comes from LTEE_ACCESS_LOG_CAPACITY (default 1024) and the slow
/// threshold from LTEE_SLOW_REQUEST_MS (default 250), both read once at
/// first use.
AccessLog& GlobalAccessLog();

}  // namespace ltee::obsv

#endif  // LTEE_OBSV_ACCESS_LOG_H_
