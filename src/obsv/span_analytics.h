#ifndef LTEE_OBSV_SPAN_ANALYTICS_H_
#define LTEE_OBSV_SPAN_ANALYTICS_H_

#include <string>
#include <string_view>
#include <vector>

namespace ltee::obsv {

/// Aggregated statistics of one span name across a whole trace.
struct SpanStats {
  std::string name;
  size_t count = 0;
  /// Sum of span durations (a span nested in another counts in both).
  double total_ms = 0.0;
  /// Sum of durations minus time covered by direct child spans on the
  /// same thread — "where did the time actually go".
  double self_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double max_ms = 0.0;
};

/// One stage on the critical path of a class: pipeline.run_class children
/// in execution order (build -> cluster -> fuse -> detect), durations
/// summed across iterations.
struct CriticalPathStage {
  std::string name;
  double ms = 0.0;
};

/// Per-class critical path through the stage DAG. The per-class stages
/// are sequential, so the critical path is the chain of direct child
/// spans of that class's pipeline.run_class spans.
struct ClassCriticalPath {
  std::string cls;  // the span's "cls" argument, verbatim
  std::vector<CriticalPathStage> stages;
  double total_ms = 0.0;  // summed run_class durations
  double self_ms = 0.0;   // run_class time not covered by any stage
};

/// Offline aggregation over a Chrome trace: per-name totals/self
/// times/percentiles plus per-class critical paths.
struct TraceAnalysis {
  std::vector<SpanStats> spans;  // sorted by self_ms, descending
  std::vector<ClassCriticalPath> classes;
  size_t num_events = 0;
  /// max end - min start across every complete event (all threads).
  double wall_ms = 0.0;
  /// Sum of all self times == sum of root-span durations per thread;
  /// exceeds wall_ms exactly by the amount of parallelism.
  double busy_ms = 0.0;
};

/// Structural validation of a Chrome trace-event document, shared by the
/// validate_trace tool, the /trace endpoint round-trip test and
/// AnalyzeChromeTrace: must be valid JSON, an object with a
/// `traceEvents` array of objects; complete events ("ph":"X") need
/// numeric `ts`/`dur`; duration events must come in balanced,
/// properly nested "B"/"E" pairs per thread. Returns false with a
/// message in `error` otherwise.
bool ValidateChromeTrace(std::string_view json, std::string* error);

/// Parses + validates `json` and computes the aggregation. "B"/"E" pairs
/// are folded into complete spans first. Returns false on malformed
/// input.
bool AnalyzeChromeTrace(std::string_view json, TraceAnalysis* analysis,
                        std::string* error);

/// Sorted fixed-width text table (self-time descending) plus the
/// per-class critical paths — the `ltee_cli analyze-trace` output.
std::string AnalysisToText(const TraceAnalysis& analysis);

/// The same data as one JSON object:
/// {"wall_ms":..,"busy_ms":..,"num_events":..,
///  "spans":[{"name":..,"count":..,"total_ms":..,"self_ms":..,
///            "p50_ms":..,"p95_ms":..,"max_ms":..},..],
///  "classes":[{"cls":..,"total_ms":..,"self_ms":..,
///              "stages":[{"name":..,"ms":..},..]},..]}
std::string AnalysisToJson(const TraceAnalysis& analysis);

}  // namespace ltee::obsv

#endif  // LTEE_OBSV_SPAN_ANALYTICS_H_
