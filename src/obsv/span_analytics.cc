#include "obsv/span_analytics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "util/json.h"
#include "util/json_parse.h"

namespace ltee::obsv {

namespace {

/// One complete span after parsing (B/E pairs already folded).
struct Span {
  std::string name;
  double start_us = 0.0;
  double dur_us = 0.0;
  double tid = 0.0;
  std::string cls;       // "cls" argument when present
  double child_us = 0.0; // filled by the nesting pass
  double end_us() const { return start_us + dur_us; }
};

bool ExtractEvents(const util::JsonValue& doc, std::vector<Span>* spans,
                   std::string* error) {
  const util::JsonValue* events = doc.Find("traceEvents");
  if (!doc.is_object() || events == nullptr || !events->is_array()) {
    if (error != nullptr) {
      *error = "not a Chrome trace: missing traceEvents array";
    }
    return false;
  }
  // Per-tid stack of open "B" events, folded into complete spans on "E".
  std::map<double, std::vector<Span>> open;
  for (size_t i = 0; i < events->items().size(); ++i) {
    const util::JsonValue& event = events->items()[i];
    if (!event.is_object()) {
      if (error != nullptr) {
        *error = "traceEvents[" + std::to_string(i) + "] is not an object";
      }
      return false;
    }
    const std::string ph = event.StringOr("ph", "");
    if (ph == "M") continue;  // metadata (thread names)
    if (ph == "X" || ph == "B") {
      const util::JsonValue* ts = event.Find("ts");
      if (ts == nullptr || !ts->is_number()) {
        if (error != nullptr) {
          *error = "traceEvents[" + std::to_string(i) + "] ('" + ph +
                   "') has no numeric ts";
        }
        return false;
      }
      Span span;
      span.name = event.StringOr("name", "");
      span.start_us = ts->as_number();
      span.tid = event.NumberOr("tid", 0.0);
      if (const util::JsonValue* args = event.Find("args");
          args != nullptr && args->is_object()) {
        span.cls = args->StringOr("cls", "");
      }
      if (ph == "X") {
        const util::JsonValue* dur = event.Find("dur");
        if (dur == nullptr || !dur->is_number()) {
          if (error != nullptr) {
            *error = "traceEvents[" + std::to_string(i) +
                     "] ('X') has no numeric dur";
          }
          return false;
        }
        span.dur_us = dur->as_number();
        spans->push_back(std::move(span));
      } else {
        open[span.tid].push_back(std::move(span));
      }
    } else if (ph == "E") {
      const double tid = event.NumberOr("tid", 0.0);
      auto it = open.find(tid);
      if (it == open.end() || it->second.empty()) {
        if (error != nullptr) {
          *error = "traceEvents[" + std::to_string(i) +
                   "]: 'E' without matching 'B' on tid " +
                   std::to_string(static_cast<long long>(tid));
        }
        return false;
      }
      Span span = std::move(it->second.back());
      it->second.pop_back();
      const std::string end_name = event.StringOr("name", "");
      if (!end_name.empty() && end_name != span.name) {
        if (error != nullptr) {
          *error = "traceEvents[" + std::to_string(i) + "]: 'E' name '" +
                   end_name + "' does not match open 'B' '" + span.name +
                   "'";
        }
        return false;
      }
      span.dur_us = event.NumberOr("ts", span.start_us) - span.start_us;
      spans->push_back(std::move(span));
    }
    // Other phases (counters, instants, flows) are ignored.
  }
  for (const auto& [tid, stack] : open) {
    if (!stack.empty()) {
      if (error != nullptr) {
        *error = "unbalanced trace: 'B' span '" + stack.back().name +
                 "' on tid " +
                 std::to_string(static_cast<long long>(tid)) +
                 " never ends";
      }
      return false;
    }
  }
  return true;
}

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t index = static_cast<size_t>(q * (sorted.size() - 1));
  return sorted[index];
}

}  // namespace

bool ValidateChromeTrace(std::string_view json, std::string* error) {
  util::JsonValue doc;
  if (!util::ParseJson(json, &doc, error)) {
    if (error != nullptr) *error = "invalid JSON: " + *error;
    return false;
  }
  std::vector<Span> spans;
  return ExtractEvents(doc, &spans, error);
}

bool AnalyzeChromeTrace(std::string_view json, TraceAnalysis* analysis,
                        std::string* error) {
  util::JsonValue doc;
  if (!util::ParseJson(json, &doc, error)) {
    if (error != nullptr) *error = "invalid JSON: " + *error;
    return false;
  }
  std::vector<Span> spans;
  if (!ExtractEvents(doc, &spans, error)) return false;

  *analysis = TraceAnalysis();
  analysis->num_events = spans.size();
  if (spans.empty()) return true;

  // Nesting pass per thread: parents sort before their children (earlier
  // start, or same start with longer duration), so a stack of enclosing
  // spans yields each span's direct parent in O(n log n).
  std::map<double, std::vector<Span*>> by_tid;
  for (Span& span : spans) by_tid[span.tid].push_back(&span);

  std::map<std::string, std::map<std::string, double>> class_stage_ms;
  std::map<std::string, std::map<std::string, double>> class_stage_first;
  std::map<std::string, double> class_total_ms, class_child_ms;

  double min_start = spans.front().start_us, max_end = spans.front().end_us();
  for (auto& [tid, list] : by_tid) {
    std::sort(list.begin(), list.end(), [](const Span* a, const Span* b) {
      if (a->start_us != b->start_us) return a->start_us < b->start_us;
      return a->dur_us > b->dur_us;
    });
    std::vector<Span*> stack;
    for (Span* span : list) {
      min_start = std::min(min_start, span->start_us);
      max_end = std::max(max_end, span->end_us());
      while (!stack.empty() && stack.back()->end_us() <= span->start_us) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        Span* parent = stack.back();
        parent->child_us += span->dur_us;
        if (parent->name == "pipeline.run_class") {
          const std::string& cls = parent->cls;
          auto& first = class_stage_first[cls];
          if (first.find(span->name) == first.end()) {
            first[span->name] = span->start_us;
          } else {
            first[span->name] =
                std::min(first[span->name], span->start_us);
          }
          class_stage_ms[cls][span->name] += span->dur_us / 1e3;
          class_child_ms[cls] += span->dur_us / 1e3;
        }
      }
      stack.push_back(span);
    }
  }

  std::map<std::string, SpanStats> stats;
  std::map<std::string, std::vector<double>> durations;
  for (const Span& span : spans) {
    SpanStats& s = stats[span.name];
    s.name = span.name;
    ++s.count;
    const double dur_ms = span.dur_us / 1e3;
    s.total_ms += dur_ms;
    s.self_ms += std::max(0.0, (span.dur_us - span.child_us) / 1e3);
    s.max_ms = std::max(s.max_ms, dur_ms);
    durations[span.name].push_back(dur_ms);
    if (span.name == "pipeline.run_class") {
      class_total_ms[span.cls] += dur_ms;
    }
  }
  for (auto& [name, s] : stats) {
    auto& d = durations[name];
    std::sort(d.begin(), d.end());
    s.p50_ms = Percentile(d, 0.50);
    s.p95_ms = Percentile(d, 0.95);
    analysis->busy_ms += s.self_ms;
    analysis->spans.push_back(std::move(s));
  }
  std::sort(analysis->spans.begin(), analysis->spans.end(),
            [](const SpanStats& a, const SpanStats& b) {
              if (a.self_ms != b.self_ms) return a.self_ms > b.self_ms;
              return a.name < b.name;
            });
  analysis->wall_ms = (max_end - min_start) / 1e3;

  for (const auto& [cls, total] : class_total_ms) {
    ClassCriticalPath path;
    path.cls = cls;
    path.total_ms = total;
    path.self_ms = std::max(0.0, total - class_child_ms[cls]);
    // Stages in execution order: sort by earliest occurrence.
    std::vector<std::pair<double, std::string>> order;
    for (const auto& [name, first] : class_stage_first[cls]) {
      order.emplace_back(first, name);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [first, name] : order) {
      path.stages.push_back({name, class_stage_ms[cls][name]});
    }
    analysis->classes.push_back(std::move(path));
  }
  return true;
}

std::string AnalysisToText(const TraceAnalysis& analysis) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "trace: %zu events, wall %.3f ms, busy %.3f ms (%.2fx)\n\n",
                analysis.num_events, analysis.wall_ms, analysis.busy_ms,
                analysis.wall_ms > 0.0 ? analysis.busy_ms / analysis.wall_ms
                                       : 0.0);
  out.append(buf);
  std::snprintf(buf, sizeof(buf), "%-36s %7s %12s %12s %10s %10s %10s\n",
                "span", "count", "total_ms", "self_ms", "p50_ms", "p95_ms",
                "max_ms");
  out.append(buf);
  out.append(36 + 1 + 7 + 1 + 12 + 1 + 12 + 3 * 11, '-');
  out.push_back('\n');
  for (const SpanStats& s : analysis.spans) {
    std::snprintf(buf, sizeof(buf),
                  "%-36s %7zu %12.3f %12.3f %10.3f %10.3f %10.3f\n",
                  s.name.c_str(), s.count, s.total_ms, s.self_ms, s.p50_ms,
                  s.p95_ms, s.max_ms);
    out.append(buf);
  }
  if (!analysis.classes.empty()) {
    out.append("\nper-class critical path (pipeline.run_class stages, ms):\n");
    for (const ClassCriticalPath& path : analysis.classes) {
      std::snprintf(buf, sizeof(buf), "  cls %-6s total %10.3f self %10.3f\n",
                    path.cls.empty() ? "?" : path.cls.c_str(), path.total_ms,
                    path.self_ms);
      out.append(buf);
      for (const CriticalPathStage& stage : path.stages) {
        std::snprintf(buf, sizeof(buf), "    %-34s %10.3f\n",
                      stage.name.c_str(), stage.ms);
        out.append(buf);
      }
    }
  }
  return out;
}

std::string AnalysisToJson(const TraceAnalysis& analysis) {
  std::string out;
  out.append("{\"wall_ms\":");
  util::AppendJsonNumber(&out, analysis.wall_ms);
  out.append(",\"busy_ms\":");
  util::AppendJsonNumber(&out, analysis.busy_ms);
  out.append(",\"num_events\":");
  out.append(std::to_string(analysis.num_events));
  out.append(",\"spans\":[");
  for (size_t i = 0; i < analysis.spans.size(); ++i) {
    const SpanStats& s = analysis.spans[i];
    if (i > 0) out.push_back(',');
    out.append("{\"name\":");
    out.append(util::JsonQuote(s.name));
    out.append(",\"count\":");
    out.append(std::to_string(s.count));
    out.append(",\"total_ms\":");
    util::AppendJsonNumber(&out, s.total_ms);
    out.append(",\"self_ms\":");
    util::AppendJsonNumber(&out, s.self_ms);
    out.append(",\"p50_ms\":");
    util::AppendJsonNumber(&out, s.p50_ms);
    out.append(",\"p95_ms\":");
    util::AppendJsonNumber(&out, s.p95_ms);
    out.append(",\"max_ms\":");
    util::AppendJsonNumber(&out, s.max_ms);
    out.push_back('}');
  }
  out.append("],\"classes\":[");
  for (size_t i = 0; i < analysis.classes.size(); ++i) {
    const ClassCriticalPath& path = analysis.classes[i];
    if (i > 0) out.push_back(',');
    out.append("{\"cls\":");
    out.append(util::JsonQuote(path.cls));
    out.append(",\"total_ms\":");
    util::AppendJsonNumber(&out, path.total_ms);
    out.append(",\"self_ms\":");
    util::AppendJsonNumber(&out, path.self_ms);
    out.append(",\"stages\":[");
    for (size_t s = 0; s < path.stages.size(); ++s) {
      if (s > 0) out.push_back(',');
      out.append("{\"name\":");
      out.append(util::JsonQuote(path.stages[s].name));
      out.append(",\"ms\":");
      util::AppendJsonNumber(&out, path.stages[s].ms);
      out.push_back('}');
    }
    out.append("]}");
  }
  out.append("]}");
  return out;
}

}  // namespace ltee::obsv
