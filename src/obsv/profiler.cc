#include "obsv/profiler.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>

#include "util/json.h"
#include "util/metrics.h"
#include "util/stack_capture.h"
#include "util/trace.h"

#if defined(__linux__)
#define LTEE_HAS_SIGPROF 1
#include <signal.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <unistd.h>
#else
#define LTEE_HAS_SIGPROF 0
#endif

namespace ltee::obsv {

namespace {

/// One raw sample, written entirely inside the SIGPROF handler. POD —
/// no constructors, no allocation.
struct RawSample {
  void* frames[util::kMaxStackDepth];
  int32_t depth;
  int32_t tid;
  char span[util::trace::kTrackedSpanNameLen];
  char trace_id[33];
};

/// Samples are sharded by kernel tid so concurrent deliveries (SIGPROF
/// can land on whichever thread is running) rarely contend; the
/// fetch_add slot claim keeps even a collision safe. Slot memory is
/// allocated by StartProfiler and only ever grows — the handler sees
/// either null (capture not armed) or fully-built rings.
constexpr int kShards = 8;

struct Shard {
  std::atomic<uint64_t> head{0};
  RawSample* slots = nullptr;
  std::atomic<uint8_t>* ready = nullptr;
  size_t capacity = 0;
};

Shard g_shards[kShards];
std::atomic<size_t> g_ring_capacity{0};
std::atomic<uint64_t> g_dropped{0};
/// Handler gate: the only state the handler consults before touching
/// anything else.
std::atomic<bool> g_sampling{false};

/// API-level state, all under g_mu. `g_session_open` spans
/// Start→Stop→Collect→Reset so a second capture cannot interleave with
/// an export in progress.
std::mutex g_mu;
bool g_timer_armed = false;
bool g_session_open = false;
int g_hz = 0;
std::chrono::steady_clock::time_point g_started_at;
double g_duration_s = 0.0;
#if LTEE_HAS_SIGPROF
struct sigaction g_old_action;
#endif

std::atomic<uint64_t> g_total_captures{0};
std::atomic<uint64_t> g_total_samples{0};
std::atomic<uint64_t> g_total_dropped{0};

#if LTEE_HAS_SIGPROF

void ProfSignalHandler(int /*signo*/, siginfo_t* /*info*/, void* /*ctx*/) {
  if (!g_sampling.load(std::memory_order_relaxed)) return;
  const int saved_errno = errno;
  const size_t capacity = g_ring_capacity.load(std::memory_order_relaxed);
  const long tid = ::syscall(SYS_gettid);
  Shard& shard = g_shards[static_cast<unsigned long>(tid) % kShards];
  const uint64_t idx = shard.head.fetch_add(1, std::memory_order_relaxed);
  if (capacity == 0 || idx >= capacity) {
    // Ring full: count the loss and move on — the handler never blocks
    // and never reallocates.
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  RawSample& sample = shard.slots[idx];
  // Skip 2 innermost frames: this handler and the kernel signal
  // trampoline.
  sample.depth = util::CaptureStack(sample.frames, util::kMaxStackDepth, 2);
  sample.tid = static_cast<int32_t>(tid);
  util::trace::CurrentSpanNameForSignal(sample.span, sizeof(sample.span));
  util::trace::CurrentTraceIdForSignal(sample.trace_id,
                                       sizeof(sample.trace_id));
  shard.ready[idx].store(1, std::memory_order_release);
  errno = saved_errno;
}

#endif  // LTEE_HAS_SIGPROF

uint64_t CollectedSampleCountLocked() {
  const size_t capacity = g_ring_capacity.load(std::memory_order_relaxed);
  uint64_t total = 0;
  for (const Shard& shard : g_shards) {
    const uint64_t head = shard.head.load(std::memory_order_relaxed);
    total += head < capacity ? head : capacity;
  }
  return total;
}

void StopLocked() {
  if (!g_timer_armed) return;
#if LTEE_HAS_SIGPROF
  itimerval disarm;
  std::memset(&disarm, 0, sizeof(disarm));
  ::setitimer(ITIMER_PROF, &disarm, nullptr);
  g_sampling.store(false, std::memory_order_relaxed);
  g_duration_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - g_started_at)
                     .count();
  // Let any in-flight handler on another thread finish before restoring
  // the old disposition (a handler takes microseconds; this is belt and
  // braces, not synchronization the rings need).
  ::usleep(2000);
  ::sigaction(SIGPROF, &g_old_action, nullptr);
#endif
  util::trace::SetSpanTrackingEnabled(false);
  g_timer_armed = false;
  const uint64_t samples = CollectedSampleCountLocked();
  const uint64_t dropped = g_dropped.load(std::memory_order_relaxed);
  g_total_samples.fetch_add(samples, std::memory_order_relaxed);
  g_total_dropped.fetch_add(dropped, std::memory_order_relaxed);
  util::Metrics().GetCounter("ltee.profiler.samples").Increment(samples);
  util::Metrics().GetCounter("ltee.profiler.dropped").Increment(dropped);
}

void ResetLocked() {
  StopLocked();
  for (Shard& shard : g_shards) {
    const uint64_t head = shard.head.load(std::memory_order_relaxed);
    const size_t used =
        static_cast<size_t>(head < shard.capacity ? head : shard.capacity);
    for (size_t i = 0; i < used; ++i) {
      shard.ready[i].store(0, std::memory_order_relaxed);
    }
    shard.head.store(0, std::memory_order_relaxed);
  }
  g_dropped.store(0, std::memory_order_relaxed);
  g_duration_s = 0.0;
  g_hz = 0;
  g_session_open = false;
}

/// Makes a symbol usable as a collapsed-stack frame: strips the
/// parameter list from demangled C++ names (keeping "operator()"'s
/// parens, which are part of the name) and replaces the two characters
/// the format reserves — ';' separates frames, ' ' separates the count.
std::string CleanFrameName(const std::string& raw) {
  std::string name = raw;
  size_t paren = name.find('(');
  while (paren != std::string::npos && paren >= 8 &&
         name.compare(paren - 8, 8, "operator") == 0) {
    paren = name.find('(', paren + 1);
  }
  if (paren != std::string::npos && paren > 0) name.resize(paren);
  for (char& c : name) {
    if (c == ';') c = ':';
    if (c == ' ') c = '_';
  }
  return name.empty() ? std::string("[unknown]") : name;
}

std::string CleanSpanName(const char* span) {
  std::string name(span);
  for (char& c : name) {
    if (c == ';') c = ':';
    if (c == ' ') c = '_';
  }
  return name;
}

std::string CollectCollapsedLocked() {
  StopLocked();
  const size_t capacity = g_ring_capacity.load(std::memory_order_relaxed);
  // Aggregate identical stacks; symbolize every distinct pc exactly once.
  std::map<std::string, uint64_t> counts;
  std::unordered_map<const void*, std::string> symbols;
  uint64_t samples = 0;
  uint64_t request_samples = 0;
  for (Shard& shard : g_shards) {
    const uint64_t head = shard.head.load(std::memory_order_relaxed);
    const size_t used =
        static_cast<size_t>(head < capacity ? head : capacity);
    for (size_t i = 0; i < used; ++i) {
      if (shard.ready[i].load(std::memory_order_acquire) == 0) continue;
      const RawSample& sample = shard.slots[i];
      ++samples;
      if (sample.trace_id[0] != '\0') ++request_samples;
      std::string line = "span:";
      line += sample.span[0] != '\0' ? CleanSpanName(sample.span) : "(none)";
      // Samples store leaf-first; collapsed lines read root-first.
      for (int f = sample.depth - 1; f >= 0; --f) {
        const void* pc = sample.frames[f];
        auto it = symbols.find(pc);
        if (it == symbols.end()) {
          it = symbols
                   .emplace(pc,
                            CleanFrameName(util::SymbolizeAddress(pc).name))
                   .first;
        }
        line += ';';
        line += it->second;
      }
      ++counts[line];
    }
  }
  std::string out;
  char header[160];
  std::snprintf(header, sizeof(header),
                "# ltee-profile hz=%d samples=%llu dropped=%llu "
                "duration_s=%.3f req_samples=%llu\n",
                g_hz, static_cast<unsigned long long>(samples),
                static_cast<unsigned long long>(
                    g_dropped.load(std::memory_order_relaxed)),
                g_duration_s,
                static_cast<unsigned long long>(request_samples));
  out += header;
  for (const auto& [line, count] : counts) {
    out += line;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

}  // namespace

std::string CollapsedFrameName(const std::string& raw) {
  return CleanFrameName(raw);
}

std::string CollapsedSpanName(const char* span) {
  return CleanSpanName(span);
}

bool StartProfiler(const ProfilerOptions& options, std::string* error) {
#if !LTEE_HAS_SIGPROF
  if (error != nullptr) *error = "profiler unsupported on this platform";
  return false;
#else
  if (!util::StackCaptureSupported()) {
    if (error != nullptr) *error = "stack capture unsupported";
    return false;
  }
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_session_open) {
    if (error != nullptr) *error = "a profile capture is already active";
    return false;
  }
  const int hz = std::clamp(options.hz, 1, 1000);
  const size_t capacity = std::max<size_t>(options.ring_capacity, 64);
  util::WarmUpStackCapture();
  for (Shard& shard : g_shards) {
    if (shard.capacity < capacity) {
      // Grow-only: old arrays are leaked deliberately. Capture sessions
      // are rare and a stray in-flight handler must never chase a freed
      // pointer.
      shard.slots = new RawSample[capacity];
      shard.ready = new std::atomic<uint8_t>[capacity];
      shard.capacity = capacity;
    }
    for (size_t i = 0; i < capacity; ++i) {
      shard.ready[i].store(0, std::memory_order_relaxed);
    }
    shard.head.store(0, std::memory_order_relaxed);
  }
  g_ring_capacity.store(capacity, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_hz = hz;
  g_duration_s = 0.0;
  util::trace::SetSpanTrackingEnabled(true);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = &ProfSignalHandler;
  sa.sa_flags = SA_RESTART | SA_SIGINFO;
  sigemptyset(&sa.sa_mask);
  if (::sigaction(SIGPROF, &sa, &g_old_action) != 0) {
    util::trace::SetSpanTrackingEnabled(false);
    if (error != nullptr) *error = "sigaction(SIGPROF) failed";
    return false;
  }
  g_sampling.store(true, std::memory_order_release);
  itimerval interval;
  std::memset(&interval, 0, sizeof(interval));
  const long usec = std::max(1000000L / hz, 1L);
  interval.it_interval.tv_sec = usec / 1000000;
  interval.it_interval.tv_usec = usec % 1000000;
  interval.it_value = interval.it_interval;
  if (::setitimer(ITIMER_PROF, &interval, nullptr) != 0) {
    g_sampling.store(false, std::memory_order_relaxed);
    ::sigaction(SIGPROF, &g_old_action, nullptr);
    util::trace::SetSpanTrackingEnabled(false);
    if (error != nullptr) *error = "setitimer(ITIMER_PROF) failed";
    return false;
  }
  g_started_at = std::chrono::steady_clock::now();
  g_timer_armed = true;
  g_session_open = true;
  g_total_captures.fetch_add(1, std::memory_order_relaxed);
  util::Metrics().GetCounter("ltee.profiler.captures").Increment();
  return true;
#endif
}

bool ProfilerActive() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_timer_armed;
}

void StopProfiler() {
  std::lock_guard<std::mutex> lock(g_mu);
  StopLocked();
}

ProfileStats CurrentProfileStats() {
  std::lock_guard<std::mutex> lock(g_mu);
  ProfileStats stats;
  stats.samples = CollectedSampleCountLocked();
  stats.dropped = g_dropped.load(std::memory_order_relaxed);
  stats.hz = g_hz;
  stats.duration_s =
      g_timer_armed
          ? std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          g_started_at)
                .count()
          : g_duration_s;
  return stats;
}

ProfilerTotals GetProfilerTotals() {
  ProfilerTotals totals;
  totals.captures = g_total_captures.load(std::memory_order_relaxed);
  totals.samples = g_total_samples.load(std::memory_order_relaxed);
  totals.dropped = g_total_dropped.load(std::memory_order_relaxed);
  return totals;
}

std::string CollectCollapsedProfile() {
  std::lock_guard<std::mutex> lock(g_mu);
  return CollectCollapsedLocked();
}

void ResetProfiler() {
  std::lock_guard<std::mutex> lock(g_mu);
  ResetLocked();
}

bool CaptureProfile(double seconds, int hz, std::string* collapsed,
                    std::string* error) {
  ProfilerOptions options;
  options.hz = hz;
  if (!StartProfiler(options, error)) return false;
  const double bounded = std::clamp(seconds, 0.01, 120.0);
  std::this_thread::sleep_for(std::chrono::duration<double>(bounded));
  std::lock_guard<std::mutex> lock(g_mu);
  std::string profile = CollectCollapsedLocked();
  ResetLocked();
  if (collapsed != nullptr) *collapsed = std::move(profile);
  return true;
}

namespace {

bool ParseHeaderLine(const std::string& line, ProfileAnalysis* out) {
  if (line.rfind("# ltee-profile", 0) != 0) return false;
  size_t pos = 0;
  while (pos < line.size()) {
    const size_t eq = line.find('=', pos);
    if (eq == std::string::npos) break;
    size_t key_start = line.rfind(' ', eq);
    key_start = key_start == std::string::npos ? pos : key_start + 1;
    const std::string key = line.substr(key_start, eq - key_start);
    size_t value_end = line.find(' ', eq + 1);
    if (value_end == std::string::npos) value_end = line.size();
    const std::string value = line.substr(eq + 1, value_end - eq - 1);
    char* end = nullptr;
    if (key == "hz") {
      out->hz = static_cast<int>(std::strtol(value.c_str(), &end, 10));
    } else if (key == "samples") {
      out->samples = std::strtoull(value.c_str(), &end, 10);
    } else if (key == "dropped") {
      out->dropped = std::strtoull(value.c_str(), &end, 10);
    } else if (key == "duration_s") {
      out->duration_s = std::strtod(value.c_str(), &end);
    }
    pos = value_end;
  }
  return true;
}

}  // namespace

bool ParseCollapsedProfile(const std::string& text, ProfileAnalysis* out,
                           std::string* error) {
  if (out == nullptr) return false;
  *out = ProfileAnalysis();
  std::map<std::string, ProfileAnalysis::FrameStat> frames;
  std::map<std::string, uint64_t> spans;
  uint64_t line_samples = 0;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      ParseHeaderLine(line, out);
      continue;
    }
    const size_t space = line.rfind(' ');
    if (space == std::string::npos || space + 1 >= line.size()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": missing count";
      }
      return false;
    }
    char* count_end = nullptr;
    const uint64_t count =
        std::strtoull(line.c_str() + space + 1, &count_end, 10);
    if (count_end == nullptr || *count_end != '\0' || count == 0) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": bad count";
      }
      return false;
    }
    // Split the stack body on ';' — first frame may be the span tag.
    std::vector<std::string> stack;
    size_t fpos = 0;
    const std::string body = line.substr(0, space);
    while (fpos <= body.size()) {
      size_t fend = body.find(';', fpos);
      if (fend == std::string::npos) fend = body.size();
      stack.push_back(body.substr(fpos, fend - fpos));
      fpos = fend + 1;
    }
    if (stack.empty() || stack.front().empty()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": empty stack";
      }
      return false;
    }
    size_t first_frame = 0;
    if (stack.front().rfind("span:", 0) == 0) {
      spans[stack.front().substr(5)] += count;
      first_frame = 1;
    } else {
      spans["(none)"] += count;
    }
    line_samples += count;
    if (first_frame >= stack.size()) continue;  // span tag only, no frames
    std::set<std::string> seen;
    for (size_t f = first_frame; f < stack.size(); ++f) {
      ProfileAnalysis::FrameStat& stat = frames[stack[f]];
      if (stat.name.empty()) stat.name = stack[f];
      // A frame recursing within one stack still gets its total counted
      // once.
      if (seen.insert(stack[f]).second) stat.total += count;
    }
    frames[stack.back()].self += count;
  }
  if (out->samples == 0) out->samples = line_samples;
  const uint64_t denom = line_samples > 0 ? line_samples : 1;
  out->frames.reserve(frames.size());
  for (auto& [name, stat] : frames) out->frames.push_back(std::move(stat));
  std::sort(out->frames.begin(), out->frames.end(),
            [](const ProfileAnalysis::FrameStat& a,
               const ProfileAnalysis::FrameStat& b) {
              if (a.self != b.self) return a.self > b.self;
              if (a.total != b.total) return a.total > b.total;
              return a.name < b.name;
            });
  out->spans.reserve(spans.size());
  for (const auto& [name, samples] : spans) {
    ProfileAnalysis::SpanStat stat;
    stat.name = name;
    stat.samples = samples;
    stat.pct = 100.0 * static_cast<double>(samples) /
               static_cast<double>(denom);
    out->spans.push_back(std::move(stat));
  }
  std::sort(out->spans.begin(), out->spans.end(),
            [](const ProfileAnalysis::SpanStat& a,
               const ProfileAnalysis::SpanStat& b) {
              if (a.samples != b.samples) return a.samples > b.samples;
              return a.name < b.name;
            });
  return true;
}

std::string ProfileAnalysisToText(const ProfileAnalysis& analysis,
                                  size_t top_n) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "Profile: %llu samples @ %d Hz over %.2f s (%llu dropped)\n",
                static_cast<unsigned long long>(analysis.samples),
                analysis.hz, analysis.duration_s,
                static_cast<unsigned long long>(analysis.dropped));
  out += buf;
  const double denom =
      analysis.samples > 0 ? static_cast<double>(analysis.samples) : 1.0;
  out += "\nTop functions by self samples:\n";
  out += "    SELF   TOTAL   SELF%  NAME\n";
  size_t shown = 0;
  for (const ProfileAnalysis::FrameStat& frame : analysis.frames) {
    if (shown++ >= top_n) break;
    std::snprintf(buf, sizeof(buf), "  %6llu  %6llu  %5.1f%%  %s\n",
                  static_cast<unsigned long long>(frame.self),
                  static_cast<unsigned long long>(frame.total),
                  100.0 * static_cast<double>(frame.self) / denom,
                  frame.name.c_str());
    out += buf;
  }
  if (analysis.frames.empty()) out += "  (no samples)\n";
  out += "\nCPU by span:\n";
  out += "  SAMPLES    PCT   SPAN\n";
  for (const ProfileAnalysis::SpanStat& span : analysis.spans) {
    std::snprintf(buf, sizeof(buf), "  %7llu  %5.1f%%  %s\n",
                  static_cast<unsigned long long>(span.samples), span.pct,
                  span.name.c_str());
    out += buf;
  }
  if (analysis.spans.empty()) out += "  (no samples)\n";
  return out;
}

std::string ProfileAnalysisToJson(const ProfileAnalysis& analysis,
                                  size_t top_n) {
  std::string out = "{\"hz\":";
  out += std::to_string(analysis.hz);
  out += ",\"samples\":";
  out += std::to_string(analysis.samples);
  out += ",\"dropped\":";
  out += std::to_string(analysis.dropped);
  out += ",\"duration_s\":";
  util::AppendJsonNumber(&out, analysis.duration_s);
  const double denom =
      analysis.samples > 0 ? static_cast<double>(analysis.samples) : 1.0;
  out += ",\"top_functions\":[";
  size_t shown = 0;
  for (const ProfileAnalysis::FrameStat& frame : analysis.frames) {
    if (shown >= top_n) break;
    if (shown++ > 0) out += ',';
    out += "{\"name\":";
    out += util::JsonQuote(frame.name);
    out += ",\"self\":";
    out += std::to_string(frame.self);
    out += ",\"total\":";
    out += std::to_string(frame.total);
    out += ",\"self_pct\":";
    util::AppendJsonNumber(&out,
                           100.0 * static_cast<double>(frame.self) / denom);
    out += '}';
  }
  out += "],\"spans\":[";
  for (size_t s = 0; s < analysis.spans.size(); ++s) {
    if (s > 0) out += ',';
    out += "{\"name\":";
    out += util::JsonQuote(analysis.spans[s].name);
    out += ",\"samples\":";
    out += std::to_string(analysis.spans[s].samples);
    out += ",\"pct\":";
    util::AppendJsonNumber(&out, analysis.spans[s].pct);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace ltee::obsv
