#ifndef LTEE_OBSV_HTTP_CLIENT_H_
#define LTEE_OBSV_HTTP_CLIENT_H_

#include <cstdint>
#include <string>

namespace ltee::obsv {

/// Options and extra outputs of an HttpGet. `traceparent` overrides the
/// header sent downstream; when empty and the calling thread has a
/// util::trace current context (a TraceContextScope is active), that
/// context is propagated automatically — so a request made while serving
/// a request continues the same trace across processes.
struct HttpGetOptions {
  std::string traceparent;
};

/// Minimal blocking HTTP/1.1 GET against localhost — the counterpart of
/// HttpServer, used by the endpoint round-trip tests, validate_trace and
/// ltee_top so they exercise the real socket path rather than calling
/// handlers directly. Returns false when the connection fails; on success
/// fills `status` and `body` (headers are parsed away).
bool HttpGet(uint16_t port, const std::string& path, int* status,
             std::string* body, std::string* error = nullptr);

/// Same, with trace propagation control: sends a `traceparent` request
/// header per `options` and reports the server's `traceparent` response
/// header through `response_traceparent` (empty when the server sent
/// none). Either out-param may be null.
bool HttpGet(uint16_t port, const std::string& path,
             const HttpGetOptions& options, int* status, std::string* body,
             std::string* response_traceparent, std::string* error = nullptr);

}  // namespace ltee::obsv

#endif  // LTEE_OBSV_HTTP_CLIENT_H_
