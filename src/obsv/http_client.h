#ifndef LTEE_OBSV_HTTP_CLIENT_H_
#define LTEE_OBSV_HTTP_CLIENT_H_

#include <cstdint>
#include <string>

namespace ltee::obsv {

/// Minimal blocking HTTP/1.1 GET against localhost — the counterpart of
/// HttpServer, used by the endpoint round-trip tests and validate_trace
/// so they exercise the real socket path rather than calling handlers
/// directly. Returns false when the connection fails; on success fills
/// `status` and `body` (headers are parsed away).
bool HttpGet(uint16_t port, const std::string& path, int* status,
             std::string* body, std::string* error = nullptr);

}  // namespace ltee::obsv

#endif  // LTEE_OBSV_HTTP_CLIENT_H_
