#include "obsv/telemetry.h"

#include "obsv/access_log.h"
#include "obsv/memtrack.h"
#include "obsv/profiler.h"
#include "util/json.h"

namespace ltee::obsv {

namespace {

/// Looks a metric up in a taken snapshot without registering it — a
/// `run`-mode process asking for /stats must not grow zero-valued serve
/// counters in its registry as a side effect.
double CounterOr(const util::MetricsSnapshot& snap, std::string_view name,
                 double fallback) {
  for (const auto& [counter_name, value] : snap.counters) {
    if (counter_name == name) return static_cast<double>(value);
  }
  return fallback;
}

double GaugeOr(const util::MetricsSnapshot& snap, std::string_view name,
               double fallback) {
  for (const auto& [gauge_name, value] : snap.gauges) {
    if (gauge_name == name) return value;
  }
  return fallback;
}

}  // namespace

RequestTelemetry& GlobalRequestTelemetry() {
  static RequestTelemetry* telemetry = new RequestTelemetry();
  return *telemetry;
}

std::string RenderStatsJson(int64_t in_flight) {
  const auto window = GlobalRequestTelemetry().latency_ms.Stats();
  const auto metrics = util::Metrics().Snapshot();
  const AccessLog& access_log = GlobalAccessLog();

  const double hits = CounterOr(metrics, "ltee.serve.cache.hits", 0.0);
  const double misses = CounterOr(metrics, "ltee.serve.cache.misses", 0.0);
  const double hit_ratio =
      hits + misses > 0.0 ? hits / (hits + misses) : 0.0;

  std::string out = "{\"window\":{\"seconds\":";
  out += std::to_string(RequestTelemetry::kWindowSeconds);
  out += ",\"covered_seconds\":";
  out += std::to_string(window.covered_seconds);
  out += ",\"requests\":";
  out += std::to_string(window.count);
  out += ",\"qps\":";
  util::AppendJsonNumber(&out, window.qps);
  out += ",\"latency_ms\":{\"p50\":";
  util::AppendJsonNumber(&out, window.p50);
  out += ",\"p95\":";
  util::AppendJsonNumber(&out, window.p95);
  out += ",\"p99\":";
  util::AppendJsonNumber(&out, window.p99);
  out += ",\"max\":";
  util::AppendJsonNumber(&out, window.max);
  out += "}},\"in_flight\":";
  out += std::to_string(in_flight);
  out += ",\"cache\":{\"hits\":";
  util::AppendJsonNumber(&out, hits);
  out += ",\"misses\":";
  util::AppendJsonNumber(&out, misses);
  out += ",\"evictions\":";
  util::AppendJsonNumber(
      &out, CounterOr(metrics, "ltee.serve.cache.evictions", 0.0));
  out += ",\"hit_ratio\":";
  util::AppendJsonNumber(&out, hit_ratio);
  out += "},\"queries\":";
  util::AppendJsonNumber(&out, CounterOr(metrics, "ltee.serve.queries", 0.0));
  out += ",\"snapshot_version\":";
  util::AppendJsonNumber(
      &out, GaugeOr(metrics, "ltee.serve.snapshot.version", 0.0));
  out += ",\"access_log\":{\"entries\":";
  out += std::to_string(access_log.size());
  out += ",\"capacity\":";
  out += std::to_string(access_log.capacity());
  out += ",\"total\":";
  out += std::to_string(access_log.total_recorded());
  out += ",\"slow\":";
  out += std::to_string(access_log.slow_count());
  out += ",\"slow_threshold_ms\":";
  util::AppendJsonNumber(&out, access_log.slow_threshold_ms());
  const ProfilerTotals profiler = GetProfilerTotals();
  out += "},\"profiler\":{\"active\":";
  out += ProfilerActive() ? "true" : "false";
  out += ",\"captures\":";
  out += std::to_string(profiler.captures);
  out += ",\"samples\":";
  out += std::to_string(profiler.samples);
  out += ",\"dropped\":";
  out += std::to_string(profiler.dropped);
  const MemtrackTotals mem = GetMemtrackTotals();
  const MemtrackCaptureTotals heap = GetMemtrackCaptureTotals();
  out += "},\"memory\":{\"tracking\":";
  out += MemTrackingEnabled() ? "true" : "false";
  out += ",\"span_accounting\":";
  out += SpanAccountingEnabled() ? "true" : "false";
  out += ",\"live_bytes\":";
  out += std::to_string(mem.live_bytes);
  out += ",\"live_allocs\":";
  out += std::to_string(mem.live_allocs);
  out += ",\"peak_live_bytes\":";
  out += std::to_string(mem.peak_live_bytes);
  out += ",\"cum_bytes\":";
  out += std::to_string(mem.cum_bytes);
  out += ",\"peak_rss_kb\":";
  out += std::to_string(ReadPeakRssBytes() / 1024);
  out += ",\"heap_profiler\":{\"active\":";
  out += HeapProfilerActive() ? "true" : "false";
  out += ",\"captures\":";
  out += std::to_string(heap.captures);
  out += ",\"samples\":";
  out += std::to_string(heap.samples);
  out += ",\"dropped\":";
  out += std::to_string(heap.dropped);
  out += "}}}";
  return out;
}

}  // namespace ltee::obsv
