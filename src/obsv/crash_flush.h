#ifndef LTEE_OBSV_CRASH_FLUSH_H_
#define LTEE_OBSV_CRASH_FLUSH_H_

#include <string>

namespace ltee::obsv {

/// Arms emergency flushing of the observability artifacts: when the
/// process terminates before DisarmCrashFlush — an uncaught exception
/// reaching std::terminate, or plain exit() from an error path — the
/// current span buffers are written to `trace_path`, a
/// RunReport-shaped JSON object (`"aborted":true`, empty stages, the
/// live metrics snapshot) to `metrics_path`, and the in-memory access
/// log ring (JSON lines, oldest first) to `access_log_path`. Without
/// this, a pipeline that throws mid-run silently produces no
/// --trace-out/--metrics-out files at all — and a serving process that
/// dies takes the record of the requests that killed it with it — which
/// is precisely when you want them most.
///
/// Any path may be empty (that artifact is skipped). Re-arming replaces
/// the previous paths. The handlers write exactly once. When
/// `profile_path` is set and a sampling capture is active (or has
/// uncollected samples), the profiler is stopped and the partial
/// collapsed-stack profile written there — a run that dies mid-pipeline
/// still yields the CPU evidence gathered up to the crash. The same
/// applies to `heap_profile_path` and an open heap-profiler session
/// (obsv::memtrack): the partial collapsed heap profile is flushed so
/// the allocation evidence survives an OOM-adjacent death.
void ArmCrashFlush(std::string trace_path, std::string metrics_path,
                   std::string access_log_path = "",
                   std::string profile_path = "",
                   std::string heap_profile_path = "");

/// Disarms the emergency flush; the normal export path has run.
void DisarmCrashFlush();

/// Immediately performs the armed flush (idempotent; used by the
/// handlers and by tests). Returns true when anything was written.
bool CrashFlushNow();

}  // namespace ltee::obsv

#endif  // LTEE_OBSV_CRASH_FLUSH_H_
