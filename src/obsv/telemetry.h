#ifndef LTEE_OBSV_TELEMETRY_H_
#define LTEE_OBSV_TELEMETRY_H_

#include <string>

#include "util/metrics.h"

namespace ltee::obsv {

/// Rolling-window request telemetry of the HTTP layer: every request an
/// HttpServer serves observes its total latency here, giving live QPS and
/// p50/p95/p99 over the last window (60s) — the numbers /stats reports
/// and ltee_top renders. Cumulative counters/histograms in the metrics
/// registry are untouched; this is the "what is happening right now"
/// companion to their "what happened since process start".
struct RequestTelemetry {
  static constexpr size_t kWindowSeconds = 60;

  util::TimeWindowedHistogram latency_ms{
      kWindowSeconds, util::ExponentialBuckets(0.01, 2.0, 20)};

  void ObserveRequest(double total_ms) { latency_ms.Observe(total_ms); }
};

/// The process-wide telemetry every HttpServer reports into.
RequestTelemetry& GlobalRequestTelemetry();

/// The GET /stats body: live windowed telemetry (QPS, latency
/// percentiles), in-flight requests, cumulative serve-layer counters
/// (cache hits/misses/evictions, total queries), the published snapshot
/// version, and access-log occupancy. `in_flight` is supplied by the
/// serving HttpServer.
std::string RenderStatsJson(int64_t in_flight);

}  // namespace ltee::obsv

#endif  // LTEE_OBSV_TELEMETRY_H_
