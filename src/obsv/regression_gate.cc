#include "obsv/regression_gate.h"

#include <cmath>
#include <string_view>

namespace ltee::obsv {

namespace {

/// True for suffix `suffix` of `name`.
bool EndsWith(const std::string& name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

double ToSeconds(double value, const std::string& unit) {
  if (unit == "ms" || IsLatencyPercentileUnit(unit)) return value / 1e3;
  if (unit == "ns") return value / 1e9;
  return value;
}

}  // namespace

bool IsLatencyPercentileUnit(const std::string& unit) {
  return unit.rfind("ms_p", 0) == 0;
}

GateDirection GateDirectionOf(const std::string& unit) {
  if (unit == "seconds" || unit == "ms" || unit == "ns" || unit == "rate" ||
      unit == "pct" || unit == "mb" || IsLatencyPercentileUnit(unit)) {
    return GateDirection::kHigherIsWorse;
  }
  if (unit == "score" || unit == "f1" || unit == "ops_s") {
    return GateDirection::kLowerIsWorse;
  }
  return GateDirection::kInformational;
}

bool FlattenGateSnapshot(const util::JsonValue& doc, GateMetricMap* out,
                         std::string* error) {
  if (const util::JsonValue* results = doc.Find("results");
      results != nullptr && results->is_array()) {
    for (const util::JsonValue& r : results->items()) {
      const util::JsonValue* bench = r.Find("bench");
      const util::JsonValue* metric = r.Find("metric");
      const util::JsonValue* value = r.Find("value");
      if (bench == nullptr || metric == nullptr || value == nullptr ||
          !value->is_number()) {
        continue;
      }
      (*out)[bench->as_string() + "/" + metric->as_string()] = {
          value->as_number(), r.StringOr("unit", "unknown")};
    }
    return true;
  }
  if (const util::JsonValue* total = doc.Find("total_seconds");
      total != nullptr && total->is_number()) {
    (*out)["run/total_seconds"] = {total->as_number(), "seconds"};
    if (const util::JsonValue* peak = doc.Find("peak_rss_bytes");
        peak != nullptr && peak->is_number() && peak->as_number() > 0.0) {
      (*out)["run/peak_rss_mb"] = {peak->as_number() / (1024.0 * 1024.0),
                                   "mb"};
    }
    if (const util::JsonValue* stages = doc.Find("stages");
        stages != nullptr && stages->is_array()) {
      for (const util::JsonValue& stage : stages->items()) {
        const util::JsonValue* name = stage.Find("stage");
        const util::JsonValue* seconds = stage.Find("seconds");
        if (name == nullptr || seconds == nullptr || !seconds->is_number()) {
          continue;
        }
        (*out)["stage/" + name->as_string()] = {seconds->as_number(),
                                                "seconds"};
      }
    }
    if (const util::JsonValue* metrics = doc.Find("metrics");
        metrics != nullptr && metrics->is_object()) {
      if (const util::JsonValue* counters = metrics->Find("counters");
          counters != nullptr && counters->is_object()) {
        for (const auto& [name, value] : counters->members()) {
          if (value.is_number()) {
            (*out)["counter/" + name] = {value.as_number(), "count"};
          }
        }
      }
      if (const util::JsonValue* gauges = metrics->Find("gauges");
          gauges != nullptr && gauges->is_object()) {
        for (const auto& [name, value] : gauges->members()) {
          if (!value.is_number()) continue;
          // Quality-drift gauges (`.._rate`) gate against the quality
          // threshold; `.._ratio` and everything else are informational.
          const char* unit = EndsWith(name, "_rate")
                                 ? "rate"
                                 : (EndsWith(name, "_ratio") ? "ratio"
                                                             : "gauge");
          (*out)["gauge/" + name] = {value.as_number(), unit};
        }
      }
    }
    return true;
  }
  if (error != nullptr) {
    *error = "unrecognized snapshot: neither a run report nor a bench "
             "history entry";
  }
  return false;
}

GateReport CompareGateMetrics(const GateMetricMap& before,
                              const GateMetricMap& after,
                              const GateThresholds& thresholds) {
  GateReport report;
  for (const auto& [name, b] : before) {
    auto it = after.find(name);
    if (it == after.end()) continue;
    const GateMetric& a = it->second;
    ++report.compared;

    GateDelta delta;
    delta.name = name;
    delta.before = b;
    delta.after = a;
    delta.rel = b.value != 0.0 ? (a.value - b.value) / std::fabs(b.value)
                               : (a.value != 0.0 ? 1.0 : 0.0);
    delta.direction = GateDirectionOf(b.unit);

    if (delta.direction == GateDirection::kHigherIsWorse) {
      if (b.unit == "rate") {
        delta.regressed = delta.rel > thresholds.quality;
      } else if (b.unit == "pct") {
        const bool above_floor = b.value >= thresholds.min_pct ||
                                 a.value >= thresholds.min_pct;
        delta.regressed = above_floor && delta.rel > thresholds.time;
      } else if (b.unit == "mb") {
        const bool above_floor = b.value >= thresholds.min_mb ||
                                 a.value >= thresholds.min_mb;
        delta.regressed = above_floor && delta.rel > thresholds.time;
      } else if (IsLatencyPercentileUnit(b.unit)) {
        const bool above_floor = b.value >= thresholds.min_latency_ms ||
                                 a.value >= thresholds.min_latency_ms;
        delta.regressed = above_floor && delta.rel > thresholds.time;
      } else {
        const bool above_floor =
            ToSeconds(b.value, b.unit) >= thresholds.min_seconds ||
            ToSeconds(a.value, a.unit) >= thresholds.min_seconds;
        delta.regressed = above_floor && delta.rel > thresholds.time;
      }
    } else if (delta.direction == GateDirection::kLowerIsWorse) {
      // Throughput tolerates the (usually looser) time threshold; paper
      // scores hold to the tighter score threshold.
      const double allowed =
          b.unit == "ops_s" ? thresholds.time : thresholds.score;
      delta.regressed = delta.rel < -allowed;
    }
    if (delta.regressed) ++report.regressions;
    report.deltas.push_back(std::move(delta));
  }
  return report;
}

}  // namespace ltee::obsv
