#ifndef LTEE_OBSV_HTTP_SERVER_H_
#define LTEE_OBSV_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace ltee::obsv {

/// One parsed request head as seen by a handler: the method, the path the
/// handler was dispatched on, the raw query string (anything after '?',
/// still percent-encoded; empty when absent), the request headers, and
/// the request's trace id (from the caller's `traceparent` header when
/// valid, freshly minted otherwise — never empty inside a handler).
struct HttpRequest {
  std::string method;
  std::string path;
  std::string query;
  /// Header fields in arrival order, names lowercased.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string trace_id;

  /// Value of header `name` (lowercase), "" when absent.
  std::string Header(std::string_view name) const;
};

/// Response of one handler invocation. `headers` are extra response
/// headers appended verbatim after Content-Type/Content-Length.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;
};

/// GET-path handler. Handlers run on the server's worker pool and must be
/// thread-safe; dispatch is on the path with the query string stripped,
/// and the query is handed to the handler via HttpRequest.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// One decoded `key=value` parameter of a query string. Returns the
/// percent-decoded value of `key` ('+' decodes to a space), or "" when
/// the key is absent.
std::string QueryParam(const std::string& query, const std::string& key);

/// Dependency-free blocking HTTP/1.1 server for the introspection
/// endpoints: one accept thread, connections dispatched onto a small
/// util::ThreadPool, one request per connection (`Connection: close`).
/// This deliberately is not a general web server — no keep-alive, no
/// request bodies, no TLS — just enough protocol for `curl` and a
/// Prometheus scraper to read a running pipeline.
///
/// Every request is served under a request-scoped TraceContext (minted
/// fresh, or continuing the caller's trace when a valid `traceparent`
/// header arrives), wrapped in an `http.request` trace span, echoed back
/// as a `traceparent` response header, recorded in the global AccessLog
/// with per-stage timings, and observed into the rolling-window request
/// telemetry behind GET /stats.
class HttpServer {
 public:
  /// `num_workers` sizes the handler pool: the introspection default (2)
  /// is plenty for one curl plus a scraper; the KB serving layer passes
  /// more to overlap concurrent query connections.
  explicit HttpServer(size_t num_workers = 2);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact-match GETs on `path`. Must be called
  /// before Start.
  void Handle(std::string path, HttpHandler handler);

  /// Binds 0.0.0.0:`port` (0 picks a free port) and starts serving.
  /// Returns false (with a message in `error`) when the socket cannot be
  /// bound. On success, port() reports the actual listening port (logged
  /// too, so scripts scraping the output of a `--port 0` run can find
  /// the ephemeral port without racing).
  bool Start(uint16_t port, std::string* error = nullptr);

  /// Stops accepting, drains in-flight requests and joins the accept
  /// thread. Safe to call repeatedly; the destructor calls it too.
  void Stop();

  bool running() const { return running_.load(); }
  uint16_t port() const { return port_; }

  /// Requests currently being served (between accept and response sent).
  int64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  std::map<std::string, HttpHandler> handlers_;
  size_t num_workers_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<int64_t> in_flight_{0};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace ltee::obsv

#endif  // LTEE_OBSV_HTTP_SERVER_H_
