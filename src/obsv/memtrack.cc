#include "obsv/memtrack.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <new>
#include <thread>
#include <unordered_map>

#include "util/metrics.h"
#include "util/stack_capture.h"
#include "util/trace.h"

// The allocator interposition is Linux-only (tid sharding, /proc) and
// must stay out of sanitizer builds: ASan interposes malloc itself and
// linking a second operator new replacement would fight its shadow
// accounting.
#if defined(__linux__) && !defined(__SANITIZE_ADDRESS__) && \
    !defined(LTEE_MEMTRACK_DISABLE)
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define LTEE_MEMTRACK_INTERPOSE 0
#else
#define LTEE_MEMTRACK_INTERPOSE 1
#endif
#else
#define LTEE_MEMTRACK_INTERPOSE 1
#endif
#else
#define LTEE_MEMTRACK_INTERPOSE 0
#endif

#if LTEE_MEMTRACK_INTERPOSE
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#include <sys/resource.h>
#endif

namespace ltee::obsv {

namespace {

// ---------------------------------------------------------------------------
// Allocation header. Prepended to EVERY new-ed block, tracking on or
// off, so a pointer allocated in one tracking state frees correctly in
// any other. 16 bytes keeps the default operator-new alignment intact
// (base from malloc is 16-aligned, so base + 16 is too).
//
// size_and_flags: bits 0..47 user size, bits 48..57 span-table slot
// (kNoSpanSlot when unattributed), bit 63 "counted" (this allocation
// incremented the live counters and its free must decrement them).
// sample_ref: generation byte << 24 | shard << 21 | slot, or
// kNoSampleRef; lets the free path decrement the sampled stack's live
// bytes. offset: distance from the malloc/posix_memalign base to the
// user pointer (== the alignment padding), what free() gets back.

struct AllocHeader {
  uint64_t size_and_flags;
  uint32_t sample_ref;
  uint32_t offset;
};
static_assert(sizeof(AllocHeader) == 16, "header must stay 16 bytes");

inline constexpr size_t kHeaderSize = sizeof(AllocHeader);
inline constexpr uint64_t kSizeMask = (uint64_t{1} << 48) - 1;
inline constexpr uint64_t kCountedBit = uint64_t{1} << 63;
inline constexpr unsigned kSpanShift = 48;
inline constexpr uint64_t kSpanFieldMask = 0x3FF;  // 10 bits
inline constexpr uint32_t kNoSpanSlot = 0x3FF;
inline constexpr uint32_t kNoSampleRef = 0xFFFFFFFFu;

// ---------------------------------------------------------------------------
// Process-wide counters. Constant-initialized: the hooks run before and
// after main(), so nothing here may have a dynamic initializer.
//
// The totals are sharded into cache-line-sized cells indexed by a
// per-thread id: a shared fetch_add per allocation across a thread pool
// turns every counter into a contended cache line and costs more than
// the allocation being measured (observed >60% end-to-end overhead on
// the allocation-bound pipeline). With one cell per thread the hot-path
// RMWs stay on lines the owning core holds exclusively; readers sum the
// cells, which is exact whenever the process is quiescent and within
// one in-flight allocation of exact otherwise.
//
// Cells are single-writer in practice — ids are handed out round-robin,
// one per thread, and a thread only ever touches its own cell — so the
// updates are plain relaxed load+store pairs, not fetch_adds: even
// uncontended, a locked RMW costs ~15-20 cycles on x86 and six of them
// per alloc/free pair tripled the price of a fast-path new/delete
// (measured 16 -> 56 ns). Past kCounterCells concurrently-created
// threads, ids wrap and two writers can race a cell, losing an update;
// that is bounded drift in a diagnostic counter, accepted for keeping
// the hot path lock-free *and* RMW-free.

inline constexpr size_t kCounterCells = 64;  // power of two >= max threads

/// Monotone alloc-side and free-side sums, not live/cum directly: the
/// allocation path then bumps two counters instead of four (live and
/// cumulative are derived at read time as difference and alloc-side
/// sum), and the running alloc_count doubles as the peak-sampling
/// countdown — no separate per-thread counter to maintain. "Live" per
/// cell can go negative (alloc on thread A, free on thread B); only the
/// cross-cell sum is meaningful.
struct alignas(64) CounterCell {
  std::atomic<uint64_t> alloc_bytes{0};
  std::atomic<uint64_t> alloc_count{0};
  std::atomic<uint64_t> freed_bytes{0};
  std::atomic<uint64_t> freed_count{0};
};

CounterCell g_counter_cells[kCounterCells];
std::atomic<uint64_t> g_peak_live_bytes{0};
/// Monotone count of cell ids handed out; readers walk only
/// min(g_cell_seq, kCounterCells) cells, so a single-threaded process
/// touches one counter line per sum instead of dragging all 4 KB of
/// cells through L1.
std::atomic<uint32_t> g_cell_seq{0};

/// This thread's counter-cell index; assigned round-robin on first use.
constinit thread_local uint32_t t_cell = 0xFFFFFFFFu;

/// The mode flags the allocation fast path consults, packed onto one
/// read-mostly cache line so the off and counters-only paths touch one
/// shared line, not three.
///
/// track_state is a tri-state so the first allocation (possibly before
/// main) can lazily consult LTEE_MEMTRACK: 0 = uninitialized, 1 = off,
/// 2 = on.
///
/// span_accounting is a second, more expensive level on top of the
/// totals: per-allocation it re-reads the innermost span on epoch
/// change and bumps three per-span stripe counters, which measures ~3x
/// the cost of the bare totals bumps on an allocation-bound workload.
/// The always-on counters mode (--memtrack, LTEE_MEMTRACK, pipeline
/// stage deltas) does not need it — every consumer of per-span bytes
/// (heap profiles, /memory, analyze-memory) runs inside a heap-profiler
/// session, which turns it on for the session's duration.
struct alignas(64) ModeFlags {
  std::atomic<int> track_state{0};
  std::atomic<bool> span_accounting{false};
  std::atomic<bool> heap_sampling{false};
};
ModeFlags g_modes;

/// Re-entrancy guard: accounting code that itself allocates (it should
/// not, but belt and braces) must not recurse into accounting. The
/// header is still written for guarded allocations.
constinit thread_local bool t_in_hook = false;

/// Marks a region's allocations as memtrack-internal (sample tables,
/// collect-time symbolization) so the observer never counts itself.
struct ScopedHookGuard {
  bool prev;
  ScopedHookGuard() : prev(t_in_hook) { t_in_hook = true; }
  ~ScopedHookGuard() { t_in_hook = prev; }
};

// ---------------------------------------------------------------------------
// Span table: fixed open-addressing map name -> byte counters, written
// lock-free from the allocation hook. state: 0 empty, 1 claimed
// (name being written), 2 ready.

inline constexpr size_t kSpanTableSize = 512;  // power of two, < kNoSpanSlot
static_assert(kSpanTableSize <= kNoSpanSlot, "slot ids must fit the field");

/// Per-slot counters are striped for the same reason the totals are
/// sharded: a whole thread pool typically sits inside ONE span (the
/// stage being run), so un-striped slot counters would re-create the
/// exact contention the counter cells remove. One stripe per counter
/// cell keeps every stripe single-writer (so the plain load+store
/// updates stay safe); readers sum the stripes. The table is BSS and
/// faulted lazily — a thread only dirties the one line per span it
/// actually allocates under, so the large virtual footprint stays
/// nearly free resident.
inline constexpr size_t kSpanStripes = kCounterCells;

struct SpanSlot {
  std::atomic<uint32_t> state{0};
  char name[util::trace::kTrackedSpanNameLen] = {};
  struct alignas(64) Stripe {
    std::atomic<int64_t> live{0};
    std::atomic<uint64_t> cum{0};
    std::atomic<uint64_t> allocs{0};
  };
  Stripe stripes[kSpanStripes];
};

SpanSlot g_span_table[kSpanTableSize];
std::atomic<uint64_t> g_span_table_full{0};

#if LTEE_MEMTRACK_INTERPOSE
uint32_t HashSpanName(const char* name) {
  uint32_t h = 2166136261u;
  for (const char* p = name; *p != '\0'; ++p) {
    h ^= static_cast<uint8_t>(*p);
    h *= 16777619u;
  }
  return h;
}

uint32_t FindOrInsertSpanSlot(const char* name) {
  uint32_t idx = HashSpanName(name) & (kSpanTableSize - 1);
  for (size_t probes = 0; probes < kSpanTableSize; ++probes) {
    SpanSlot& slot = g_span_table[idx];
    uint32_t state = slot.state.load(std::memory_order_acquire);
    if (state == 0) {
      uint32_t expected = 0;
      if (slot.state.compare_exchange_strong(expected, 1,
                                             std::memory_order_acq_rel)) {
        size_t n = 0;
        for (; n < sizeof(slot.name) - 1 && name[n] != '\0'; ++n) {
          slot.name[n] = name[n];
        }
        slot.name[n] = '\0';
        slot.state.store(2, std::memory_order_release);
        return idx;
      }
      state = expected;
    }
    // Another thread is mid-insert on this slot: its name copy is a few
    // instructions, spin it out rather than mis-filing bytes.
    while (state == 1) state = slot.state.load(std::memory_order_acquire);
    if (std::strncmp(slot.name, name, sizeof(slot.name)) == 0) return idx;
    idx = (idx + 1) & (kSpanTableSize - 1);
  }
  g_span_table_full.fetch_add(1, std::memory_order_relaxed);
  return kNoSpanSlot;
}
#endif  // LTEE_MEMTRACK_INTERPOSE

/// Per-thread (epoch -> innermost span slot) cache: attribution costs
/// one TLS epoch compare per allocation in the steady state instead of a
/// 48-byte name copy plus a hash probe.
struct SpanCache {
  uint64_t epoch;
  uint32_t slot;
  bool valid;
  char name[util::trace::kTrackedSpanNameLen];
};
constinit thread_local SpanCache t_span_cache{0, 0, false, {}};

// ---------------------------------------------------------------------------
// Heap-profiler session state (sampled allocation stacks), mirroring the
// CPU profiler's tid-sharded grow-only rings.

inline constexpr int kHeapShards = 8;
inline constexpr uint32_t kSlotBits = 21;
inline constexpr uint32_t kSlotMask = (uint32_t{1} << kSlotBits) - 1;

struct HeapSample {
  void* frames[util::kMaxStackDepth];
  std::atomic<int64_t> live{0};
  uint64_t size = 0;
  int depth = 0;
  char span[util::trace::kTrackedSpanNameLen] = {};
};

struct HeapShard {
  std::atomic<uint64_t> head{0};
  HeapSample* slots = nullptr;
  std::atomic<uint8_t>* ready = nullptr;
  size_t capacity = 0;
};

HeapShard g_heap_shards[kHeapShards];

std::atomic<uint64_t> g_heap_sample_bytes{64 * 1024};
std::atomic<uint32_t> g_heap_gen{0};
std::atomic<uint64_t> g_heap_dropped{0};
std::atomic<size_t> g_heap_capacity{0};

/// Serializes Start/Stop/Collect/Reset and spans the whole session: held
/// open from Start until Reset so a second Start is refused, never
/// queued (the /memory endpoint's 503).
std::mutex g_heap_mu;
bool g_heap_session_open = false;
bool g_heap_armed = false;
bool g_heap_owns_tracking = false;
bool g_heap_owns_span_accounting = false;
double g_heap_duration_s = 0.0;
std::chrono::steady_clock::time_point g_heap_started_at;

std::atomic<uint64_t> g_total_captures{0};
std::atomic<uint64_t> g_total_samples{0};
std::atomic<uint64_t> g_total_dropped{0};

/// Byte generation tag stored in sample refs: cycles 1..255, never 0, so
/// a ref from a previous session can (almost) never decrement a slot the
/// current session reused.
#if LTEE_MEMTRACK_INTERPOSE
uint32_t GenByte(uint32_t gen) { return (gen % 255u) + 1u; }
#endif

/// Per-thread sampling countdown; re-seeded when the generation moves.
struct ThreadSampleState {
  uint32_t gen;
  int64_t budget;
};
constinit thread_local ThreadSampleState t_sample{0, 0};

#if LTEE_MEMTRACK_INTERPOSE
#define LTEE_MEMTRACK_NOINLINE __attribute__((noinline))
#define LTEE_MEMTRACK_INLINE inline __attribute__((always_inline))

int InitTrackStateSlow() {
  const char* env = std::getenv("LTEE_MEMTRACK");
  const bool on =
      env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
  int expected = 0;
  if (g_modes.track_state.compare_exchange_strong(expected, on ? 2 : 1,
                                            std::memory_order_relaxed)) {
    return on ? 2 : 1;
  }
  return expected;
}

LTEE_MEMTRACK_INLINE bool TrackingOn() {
  int state = g_modes.track_state.load(std::memory_order_relaxed);
  if (state == 0) state = InitTrackStateSlow();
  return state == 2;
}

/// Single-writer counter bump: plain relaxed load+store, no locked RMW.
/// Only valid on this thread's own cell/stripe (see the cell comment).
LTEE_MEMTRACK_INLINE void CellAdd(std::atomic<int64_t>& counter, int64_t v) {
  counter.store(counter.load(std::memory_order_relaxed) + v,
                std::memory_order_relaxed);
}

LTEE_MEMTRACK_INLINE void CellAdd(std::atomic<uint64_t>& counter, uint64_t v) {
  counter.store(counter.load(std::memory_order_relaxed) + v,
                std::memory_order_relaxed);
}

LTEE_MEMTRACK_INLINE uint32_t CellIndexForThread() {
  uint32_t idx = t_cell;
  if (idx == 0xFFFFFFFFu) {
    idx = g_cell_seq.fetch_add(1, std::memory_order_relaxed) &
          (kCounterCells - 1);
    t_cell = idx;
  }
  return idx;
}

LTEE_MEMTRACK_INLINE size_t AssignedCellCount() {
  const uint32_t seq = g_cell_seq.load(std::memory_order_relaxed);
  return seq < kCounterCells ? seq : kCounterCells;
}

int64_t SumLiveBytes() {
  int64_t live = 0;
  const size_t assigned = AssignedCellCount();
  for (size_t i = 0; i < assigned; ++i) {
    const CounterCell& cell = g_counter_cells[i];
    live += static_cast<int64_t>(
                cell.alloc_bytes.load(std::memory_order_relaxed)) -
            static_cast<int64_t>(
                cell.freed_bytes.load(std::memory_order_relaxed));
  }
  return live;
}

/// Folds the current live sum into the stored peak and returns the
/// result. Called opportunistically from the hot path (amortized over
/// kPeakSampleAllocs allocations per thread) and from every totals
/// read, so the invariant peak >= live holds at every observation
/// point without a contended CAS per allocation.
uint64_t UpdatePeakLiveBytes() {
  const int64_t live_signed = SumLiveBytes();
  const uint64_t live =
      live_signed > 0 ? static_cast<uint64_t>(live_signed) : 0;
  uint64_t peak = g_peak_live_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_live_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
  return peak > live ? peak : live;
}

inline constexpr uint64_t kPeakSampleAllocs = 512;  // power of two
static_assert((kPeakSampleAllocs & (kPeakSampleAllocs - 1)) == 0);

LTEE_MEMTRACK_NOINLINE void MaybeSample(AllocHeader* header, size_t size,
                                        const char* span) {
  const uint32_t gen = g_heap_gen.load(std::memory_order_relaxed);
  ThreadSampleState& ts = t_sample;
  if (ts.gen != gen) {
    ts.gen = gen;
    ts.budget = static_cast<int64_t>(
        g_heap_sample_bytes.load(std::memory_order_relaxed));
  }
  ts.budget -= static_cast<int64_t>(size);
  if (ts.budget > 0) return;
  ts.budget = static_cast<int64_t>(
      g_heap_sample_bytes.load(std::memory_order_relaxed));
  const unsigned shard_index = static_cast<unsigned>(
      static_cast<unsigned long>(::syscall(SYS_gettid)) % kHeapShards);
  HeapShard& shard = g_heap_shards[shard_index];
  const uint64_t idx = shard.head.fetch_add(1, std::memory_order_relaxed);
  if (shard.slots == nullptr || idx >= shard.capacity || idx > kSlotMask) {
    g_heap_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  HeapSample& sample = shard.slots[idx];
  // skip=3 drops MaybeSample, RecordAlloc and TrackedAlloc; the operator
  // replacement itself stays and is scrubbed at collect time by symbol
  // name (inlining of the thin operator bodies is compiler-dependent).
  sample.depth = util::CaptureStack(sample.frames, util::kMaxStackDepth, 3);
  sample.size = size;
  sample.live.store(static_cast<int64_t>(size), std::memory_order_relaxed);
  if (span != nullptr && span[0] != '\0') {
    std::strncpy(sample.span, span, sizeof(sample.span) - 1);
    sample.span[sizeof(sample.span) - 1] = '\0';
  } else {
    sample.span[0] = '\0';
  }
  shard.ready[idx].store(1, std::memory_order_release);
  header->sample_ref = (GenByte(gen) << 24) | (shard_index << kSlotBits) |
                       static_cast<uint32_t>(idx);
}

LTEE_MEMTRACK_NOINLINE void RecordAlloc(AllocHeader* header, size_t size) {
  if (t_in_hook || !TrackingOn()) return;
  // No guard flip for the plain counter bumps below — nothing in them
  // allocates. Only MaybeSample's stack capture gets the re-entrancy
  // guard; two TLS stores per allocation are measurable at this
  // call rate.
  // Compose the final header word in a register and store it once at
  // the end — TrackedAlloc's initial store is still in the store
  // buffer, so read-modify-writing it here costs a forwarded load and
  // an extra store for nothing.
  uint64_t flags = (size & kSizeMask) | kCountedBit |
                   (static_cast<uint64_t>(kNoSpanSlot) << kSpanShift);
  const uint32_t cell_index = CellIndexForThread();
  CounterCell& cell = g_counter_cells[cell_index];
  CellAdd(cell.alloc_bytes, size);
  const uint64_t count =
      cell.alloc_count.load(std::memory_order_relaxed) + 1;
  cell.alloc_count.store(count, std::memory_order_relaxed);
  // The running count doubles as the opportunistic peak-fold countdown.
  if ((count & (kPeakSampleAllocs - 1)) == 0) UpdatePeakLiveBytes();

  const char* sample_span = nullptr;
  if (g_modes.span_accounting.load(std::memory_order_relaxed)) {
    SpanCache& cache = t_span_cache;
    const uint64_t epoch = util::trace::SpanEpochForThread();
    if (!cache.valid || cache.epoch != epoch) {
      cache.valid = true;
      cache.epoch = epoch;
      if (util::trace::CurrentSpanNameForSignal(cache.name,
                                                sizeof(cache.name))) {
        cache.slot = FindOrInsertSpanSlot(cache.name);
      } else {
        cache.name[0] = '\0';
        cache.slot = kNoSpanSlot;
      }
    }
    if (cache.slot != kNoSpanSlot) {
      SpanSlot::Stripe& stripe =
          g_span_table[cache.slot].stripes[cell_index % kSpanStripes];
      CellAdd(stripe.live, static_cast<int64_t>(size));
      CellAdd(stripe.cum, size);
      CellAdd(stripe.allocs, uint64_t{1});
      flags = (size & kSizeMask) | kCountedBit |
              (static_cast<uint64_t>(cache.slot) << kSpanShift);
    }
    sample_span = cache.name;
  }
  header->size_and_flags = flags;
  if (g_modes.heap_sampling.load(std::memory_order_relaxed)) {
    t_in_hook = true;
    MaybeSample(header, size, sample_span);
    t_in_hook = false;
  }
}

/// The one allocation path every operator-new replacement funnels into.
/// Returns nullptr on OOM (the operators own the new-handler loop).
LTEE_MEMTRACK_NOINLINE void* TrackedAlloc(size_t size, size_t alignment) {
  if (size > kSizeMask) return nullptr;
  const size_t pad = alignment <= 16 ? kHeaderSize : alignment;
  void* base = nullptr;
  if (alignment <= 16) {
    base = std::malloc(size + pad);
  } else {
    // Power-of-two >= 32 here; posix_memalign additionally wants a
    // multiple of sizeof(void*), which that implies.
    if (alignment > (size_t{1} << 31) ||
        ::posix_memalign(&base, alignment, size + pad) != 0) {
      base = nullptr;
    }
  }
  if (base == nullptr) return nullptr;
  void* user = static_cast<char*>(base) + pad;
  AllocHeader* header =
      reinterpret_cast<AllocHeader*>(static_cast<char*>(user) - kHeaderSize);
  header->size_and_flags =
      (size & kSizeMask) |
      (static_cast<uint64_t>(kNoSpanSlot) << kSpanShift);
  header->sample_ref = kNoSampleRef;
  header->offset = static_cast<uint32_t>(pad);
  RecordAlloc(header, size);
  return user;
}

LTEE_MEMTRACK_NOINLINE void TrackedFree(void* ptr) {
  if (ptr == nullptr) return;
  AllocHeader* header =
      reinterpret_cast<AllocHeader*>(static_cast<char*>(ptr) - kHeaderSize);
  const uint64_t size_and_flags = header->size_and_flags;
  const uint32_t offset = header->offset;
  if ((size_and_flags & kCountedBit) != 0) {
    const uint64_t size = size_and_flags & kSizeMask;
    const uint32_t cell_index = CellIndexForThread();
    CounterCell& cell = g_counter_cells[cell_index];
    CellAdd(cell.freed_bytes, size);
    CellAdd(cell.freed_count, uint64_t{1});
    const uint32_t span_slot =
        static_cast<uint32_t>((size_and_flags >> kSpanShift) & kSpanFieldMask);
    if (span_slot < kSpanTableSize) {
      CellAdd(g_span_table[span_slot].stripes[cell_index % kSpanStripes].live,
              -static_cast<int64_t>(size));
    }
    const uint32_t ref = header->sample_ref;
    if (ref != kNoSampleRef &&
        ((ref >> 24) & 0xFFu) ==
            GenByte(g_heap_gen.load(std::memory_order_relaxed))) {
      HeapShard& shard = g_heap_shards[(ref >> kSlotBits) & (kHeapShards - 1)];
      const uint32_t idx = ref & kSlotMask;
      if (idx < shard.capacity &&
          shard.ready[idx].load(std::memory_order_acquire) != 0) {
        shard.slots[idx].live.fetch_sub(static_cast<int64_t>(size),
                                        std::memory_order_relaxed);
      }
    }
  }
  std::free(static_cast<char*>(ptr) - offset);
}
#endif  // LTEE_MEMTRACK_INTERPOSE

uint64_t CollectedHeapSampleCountLocked() {
  uint64_t total = 0;
  const size_t capacity = g_heap_capacity.load(std::memory_order_relaxed);
  for (HeapShard& shard : g_heap_shards) {
    const uint64_t head = shard.head.load(std::memory_order_relaxed);
    total += head < capacity ? head : capacity;
  }
  return total;
}

void StopHeapLocked() {
  if (!g_heap_armed) return;
  g_modes.heap_sampling.store(false, std::memory_order_relaxed);
  g_heap_duration_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() -
                          g_heap_started_at)
                          .count();
  g_heap_armed = false;
  if (g_heap_owns_span_accounting) {
    SetSpanAccountingEnabled(false);
    g_heap_owns_span_accounting = false;
  }
  if (g_heap_owns_tracking) {
    SetMemTrackingEnabled(false);
    g_heap_owns_tracking = false;
  }
  const uint64_t samples = CollectedHeapSampleCountLocked();
  const uint64_t dropped = g_heap_dropped.load(std::memory_order_relaxed);
  g_total_samples.fetch_add(samples, std::memory_order_relaxed);
  g_total_dropped.fetch_add(dropped, std::memory_order_relaxed);
  util::Metrics().GetCounter("ltee.memtrack.samples").Increment(samples);
  util::Metrics().GetCounter("ltee.memtrack.dropped").Increment(dropped);
}

void ResetHeapLocked() {
  StopHeapLocked();
  const size_t capacity = g_heap_capacity.load(std::memory_order_relaxed);
  for (HeapShard& shard : g_heap_shards) {
    const uint64_t head = shard.head.load(std::memory_order_relaxed);
    const size_t used =
        static_cast<size_t>(head < capacity ? head : capacity);
    for (size_t i = 0; i < used; ++i) {
      shard.ready[i].store(0, std::memory_order_relaxed);
    }
    shard.head.store(0, std::memory_order_relaxed);
  }
  g_heap_dropped.store(0, std::memory_order_relaxed);
  g_heap_duration_s = 0.0;
  // Invalidate sample refs held by still-live allocations: their frees
  // must not decrement slots a new session will reuse.
  g_heap_gen.fetch_add(1, std::memory_order_relaxed);
  g_heap_session_open = false;
}

/// Frames the allocator machinery itself contributes to a sampled stack;
/// scrubbed from the leaf end at collect time so flamegraphs lead with
/// the real allocation site.
bool IsAllocatorFrame(const std::string& symbol) {
  return symbol.find("operator new") != std::string::npos ||
         symbol.find("TrackedAlloc") != std::string::npos ||
         symbol.find("RecordAlloc") != std::string::npos ||
         symbol.find("MaybeSample") != std::string::npos ||
         symbol.find("__gnu_cxx::new_allocator") != std::string::npos ||
         symbol.find("std::allocator") != std::string::npos;
}

std::string CollectCollapsedHeapLocked() {
  StopHeapLocked();
  // Symbolization and aggregation allocate heavily; none of it should
  // show up in the profile being exported.
  ScopedHookGuard guard;
  const size_t capacity = g_heap_capacity.load(std::memory_order_relaxed);
  // Aggregate identical stacks by live bytes; symbolize each distinct pc
  // exactly once. Allocation is fine here: sampling has stopped.
  std::map<std::string, uint64_t> lines;
  struct SymbolInfo {
    std::string clean;
    bool allocator = false;
  };
  std::unordered_map<const void*, SymbolInfo> symbols;
  uint64_t samples = 0;
  for (HeapShard& shard : g_heap_shards) {
    const uint64_t head = shard.head.load(std::memory_order_relaxed);
    const size_t used =
        static_cast<size_t>(head < capacity ? head : capacity);
    for (size_t i = 0; i < used; ++i) {
      if (shard.ready[i].load(std::memory_order_acquire) == 0) continue;
      const HeapSample& sample = shard.slots[i];
      ++samples;
      const int64_t live = sample.live.load(std::memory_order_relaxed);
      if (live <= 0) continue;  // fully freed since it was sampled
      auto info = [&symbols](const void* pc) -> const SymbolInfo& {
        auto it = symbols.find(pc);
        if (it == symbols.end()) {
          const std::string raw = util::SymbolizeAddress(pc).name;
          it = symbols
                   .emplace(pc, SymbolInfo{CollapsedFrameName(raw),
                                           IsAllocatorFrame(raw)})
                   .first;
        }
        return it->second;
      };
      // Samples store leaf-first; drop the allocator's own frames off
      // the leaf end, then emit root-first.
      int leaf = 0;
      while (leaf < sample.depth && info(sample.frames[leaf]).allocator) {
        ++leaf;
      }
      std::string line = "span:";
      line += sample.span[0] != '\0' ? CollapsedSpanName(sample.span)
                                     : "(none)";
      for (int f = sample.depth - 1; f >= leaf; --f) {
        line += ';';
        line += info(sample.frames[f]).clean;
      }
      lines[line] += static_cast<uint64_t>(live);
    }
  }
  const MemtrackTotals totals = GetMemtrackTotals();
  const size_t sample_kb =
      (g_heap_sample_bytes.load(std::memory_order_relaxed) + 1023) / 1024;
  char header[256];
  std::snprintf(header, sizeof(header),
                "# ltee-profile heap=1 sample_kb=%zu samples=%llu "
                "dropped=%llu duration_s=%.3f live_bytes=%llu "
                "live_allocs=%llu peak_rss_kb=%llu\n",
                sample_kb, static_cast<unsigned long long>(samples),
                static_cast<unsigned long long>(
                    g_heap_dropped.load(std::memory_order_relaxed)),
                g_heap_duration_s,
                static_cast<unsigned long long>(totals.live_bytes),
                static_cast<unsigned long long>(totals.live_allocs),
                static_cast<unsigned long long>(ReadPeakRssBytes() / 1024));
  std::string out = header;
  for (const SpanBytes& span : MemtrackSpanBytes()) {
    char line[192];
    std::snprintf(line, sizeof(line),
                  "# ltee-memtrack-span %s live=%llu cum=%llu allocs=%llu\n",
                  CollapsedSpanName(span.span.c_str()).c_str(),
                  static_cast<unsigned long long>(span.live_bytes),
                  static_cast<unsigned long long>(span.cum_bytes),
                  static_cast<unsigned long long>(span.allocs));
    out += line;
  }
  for (const auto& [line, bytes] : lines) {
    out += line;
    out += ' ';
    out += std::to_string(bytes);
    out += '\n';
  }
  return out;
}

uint64_t ParseU64Token(const std::string& line, const char* key) {
  const std::string needle = std::string(" ") + key + "=";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
}

std::string FormatKb(uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(bytes) / 1024.0);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API

bool MemTrackingSupported() { return LTEE_MEMTRACK_INTERPOSE != 0; }

#if LTEE_MEMTRACK_INTERPOSE

void SetMemTrackingEnabled(bool enabled) {
  // Resolve the env-derived initial state first so a concurrent lazy
  // init cannot overwrite this explicit request.
  TrackingOn();
  g_modes.track_state.store(enabled ? 2 : 1, std::memory_order_relaxed);
}

bool MemTrackingEnabled() { return TrackingOn(); }

void SetSpanAccountingEnabled(bool enabled) {
  // The exchange keeps the span-tracking reference count paired: exactly
  // one trace-side enable per off->on transition, one disable per
  // on->off.
  const bool previous =
      g_modes.span_accounting.exchange(enabled, std::memory_order_relaxed);
  if (enabled && !previous) {
    util::trace::SetSpanTrackingEnabled(true);
  } else if (!enabled && previous) {
    util::trace::SetSpanTrackingEnabled(false);
  }
}

bool SpanAccountingEnabled() {
  return g_modes.span_accounting.load(std::memory_order_relaxed);
}

MemtrackTotals GetMemtrackTotals() {
  MemtrackTotals totals;
  uint64_t freed_bytes = 0;
  uint64_t freed_count = 0;
  const size_t assigned = AssignedCellCount();
  for (size_t i = 0; i < assigned; ++i) {
    const CounterCell& cell = g_counter_cells[i];
    totals.cum_bytes += cell.alloc_bytes.load(std::memory_order_relaxed);
    totals.cum_allocs += cell.alloc_count.load(std::memory_order_relaxed);
    freed_bytes += cell.freed_bytes.load(std::memory_order_relaxed);
    freed_count += cell.freed_count.load(std::memory_order_relaxed);
  }
  totals.live_bytes =
      totals.cum_bytes > freed_bytes ? totals.cum_bytes - freed_bytes : 0;
  totals.live_allocs =
      totals.cum_allocs > freed_count ? totals.cum_allocs - freed_count : 0;
  // Folding here (not just in the hot path) keeps peak >= live true for
  // every reader, whatever the per-thread sampling countdowns hold.
  totals.peak_live_bytes = UpdatePeakLiveBytes();
  return totals;
}

std::vector<SpanBytes> MemtrackSpanBytes() {
  std::vector<SpanBytes> out;
  for (const SpanSlot& slot : g_span_table) {
    if (slot.state.load(std::memory_order_acquire) != 2) continue;
    SpanBytes span;
    span.span = slot.name;
    int64_t live = 0;
    for (const SpanSlot::Stripe& stripe : slot.stripes) {
      live += stripe.live.load(std::memory_order_relaxed);
      span.cum_bytes += stripe.cum.load(std::memory_order_relaxed);
      span.allocs += stripe.allocs.load(std::memory_order_relaxed);
    }
    span.live_bytes = live > 0 ? static_cast<uint64_t>(live) : 0;
    out.push_back(std::move(span));
  }
  std::sort(out.begin(), out.end(), [](const SpanBytes& a, const SpanBytes& b) {
    if (a.cum_bytes != b.cum_bytes) return a.cum_bytes > b.cum_bytes;
    return a.span < b.span;
  });
  return out;
}

#else  // !LTEE_MEMTRACK_INTERPOSE

void SetMemTrackingEnabled(bool) {}
bool MemTrackingEnabled() { return false; }
void SetSpanAccountingEnabled(bool) {}
bool SpanAccountingEnabled() { return false; }
MemtrackTotals GetMemtrackTotals() { return {}; }
std::vector<SpanBytes> MemtrackSpanBytes() { return {}; }

#endif

uint64_t ReadPeakRssBytes() {
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::strncmp(line, "VmHWM:", 6) == 0) {
        const uint64_t kb = std::strtoull(line + 6, nullptr, 10);
        std::fclose(f);
        if (kb > 0) return kb * 1024;
        break;
      }
    }
    std::fclose(f);
  }
  struct rusage usage;
  if (::getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
    // Linux reports ru_maxrss in kilobytes.
    return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
  }
  return 0;
}

bool StartHeapProfiler(const HeapProfilerOptions& options,
                       std::string* error) {
#if !LTEE_MEMTRACK_INTERPOSE
  (void)options;
  if (error != nullptr) {
    *error = "memory tracking unsupported on this build (sanitizer or "
             "non-Linux)";
  }
  return false;
#else
  if (!util::StackCaptureSupported()) {
    if (error != nullptr) *error = "stack capture unsupported";
    return false;
  }
  std::lock_guard<std::mutex> lock(g_heap_mu);
  if (g_heap_session_open) {
    if (error != nullptr) *error = "a heap profile capture is already active";
    return false;
  }
  const size_t capacity =
      std::min<size_t>(std::max<size_t>(options.table_capacity, 64),
                       kSlotMask - 1);
  util::WarmUpStackCapture();
  // The sample tables are ~60 MB of observer state; keep them out of the
  // live-byte counters they exist to measure.
  ScopedHookGuard guard;
  for (HeapShard& shard : g_heap_shards) {
    if (shard.capacity < capacity) {
      // Grow-only: old arrays are leaked deliberately so a racing free
      // chasing a stale sample ref can never touch freed memory.
      shard.slots = new HeapSample[capacity];
      shard.ready = new std::atomic<uint8_t>[capacity];
      shard.capacity = capacity;
    }
    for (size_t i = 0; i < capacity; ++i) {
      shard.ready[i].store(0, std::memory_order_relaxed);
    }
    shard.head.store(0, std::memory_order_relaxed);
  }
  g_heap_capacity.store(capacity, std::memory_order_relaxed);
  g_heap_sample_bytes.store(
      std::min<size_t>(std::max<size_t>(options.sample_bytes, 1),
                       size_t{1} << 30),
      std::memory_order_relaxed);
  g_heap_dropped.store(0, std::memory_order_relaxed);
  g_heap_duration_s = 0.0;
  // New generation: per-thread countdowns re-seed and stale refs from
  // the previous session stop matching.
  g_heap_gen.fetch_add(1, std::memory_order_relaxed);
  if (!MemTrackingEnabled()) {
    SetMemTrackingEnabled(true);
    g_heap_owns_tracking = true;
  }
  // Sessions are what per-span bytes exist for; attribution runs exactly
  // as long as the session so plain counters mode stays cheap.
  if (!SpanAccountingEnabled()) {
    SetSpanAccountingEnabled(true);
    g_heap_owns_span_accounting = true;
  }
  g_heap_started_at = std::chrono::steady_clock::now();
  g_modes.heap_sampling.store(true, std::memory_order_release);
  g_heap_armed = true;
  g_heap_session_open = true;
  g_total_captures.fetch_add(1, std::memory_order_relaxed);
  util::Metrics().GetCounter("ltee.memtrack.captures").Increment();
  return true;
#endif
}

bool HeapProfilerActive() {
  std::lock_guard<std::mutex> lock(g_heap_mu);
  return g_heap_armed;
}

void StopHeapProfiler() {
  std::lock_guard<std::mutex> lock(g_heap_mu);
  StopHeapLocked();
}

HeapProfileStats CurrentHeapProfileStats() {
  std::lock_guard<std::mutex> lock(g_heap_mu);
  HeapProfileStats stats;
  stats.samples = CollectedHeapSampleCountLocked();
  stats.dropped = g_heap_dropped.load(std::memory_order_relaxed);
  stats.sample_kb =
      (g_heap_sample_bytes.load(std::memory_order_relaxed) + 1023) / 1024;
  stats.duration_s =
      g_heap_armed ? std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - g_heap_started_at)
                         .count()
                   : g_heap_duration_s;
  return stats;
}

MemtrackCaptureTotals GetMemtrackCaptureTotals() {
  MemtrackCaptureTotals totals;
  totals.captures = g_total_captures.load(std::memory_order_relaxed);
  totals.samples = g_total_samples.load(std::memory_order_relaxed);
  totals.dropped = g_total_dropped.load(std::memory_order_relaxed);
  return totals;
}

std::string CollectCollapsedHeapProfile() {
  std::lock_guard<std::mutex> lock(g_heap_mu);
  return CollectCollapsedHeapLocked();
}

void ResetHeapProfiler() {
  std::lock_guard<std::mutex> lock(g_heap_mu);
  ResetHeapLocked();
}

bool CaptureHeapProfile(double seconds, size_t sample_kb,
                        std::string* collapsed, std::string* error) {
  HeapProfilerOptions options;
  options.sample_bytes = sample_kb * 1024;
  if (!StartHeapProfiler(options, error)) return false;
  const double clamped = std::clamp(seconds, 0.01, 120.0);
  std::this_thread::sleep_for(std::chrono::duration<double>(clamped));
  if (collapsed != nullptr) *collapsed = CollectCollapsedHeapProfile();
  ResetHeapProfiler();
  return true;
}

bool ParseHeapProfileHeader(const std::string& text,
                            HeapProfileHeader* out) {
  if (out == nullptr) return false;
  *out = HeapProfileHeader();
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.rfind("# ltee-profile", 0) == 0 &&
        line.find(" heap=1") != std::string::npos) {
      out->is_heap = true;
      out->sample_kb = static_cast<size_t>(ParseU64Token(line, "sample_kb"));
      out->live_bytes = ParseU64Token(line, "live_bytes");
      out->live_allocs = ParseU64Token(line, "live_allocs");
      out->peak_rss_kb = ParseU64Token(line, "peak_rss_kb");
    } else if (line.rfind("# ltee-memtrack-span ", 0) == 0) {
      const size_t name_start = std::strlen("# ltee-memtrack-span ");
      const size_t name_end = line.find(' ', name_start);
      if (name_end == std::string::npos) continue;
      SpanBytes span;
      span.span = line.substr(name_start, name_end - name_start);
      span.live_bytes = ParseU64Token(line, "live");
      span.cum_bytes = ParseU64Token(line, "cum");
      span.allocs = ParseU64Token(line, "allocs");
      out->spans.push_back(std::move(span));
    }
  }
  return out->is_heap;
}

std::string HeapAnalysisToText(const ProfileAnalysis& analysis,
                               const HeapProfileHeader& header,
                               size_t top_n) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "Heap profile: %llu sampled allocations (~1 per %zu KB), "
                "%llu dropped, %.3f s\n",
                static_cast<unsigned long long>(analysis.samples),
                header.sample_kb,
                static_cast<unsigned long long>(analysis.dropped),
                analysis.duration_s);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "Live (tracked): %.1f MB in %llu allocations; peak RSS "
                "%.1f MB\n",
                static_cast<double>(header.live_bytes) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(header.live_allocs),
                static_cast<double>(header.peak_rss_kb) / 1024.0);
  out += buf;
  if (!header.spans.empty()) {
    out += "Bytes by span (live / cumulative):\n";
    out += "      LIVE_KB        CUM_KB    ALLOCS  SPAN\n";
    for (const SpanBytes& span : header.spans) {
      std::snprintf(buf, sizeof(buf), "  %11s %13s %9llu  %s\n",
                    FormatKb(span.live_bytes).c_str(),
                    FormatKb(span.cum_bytes).c_str(),
                    static_cast<unsigned long long>(span.allocs),
                    span.span.c_str());
      out += buf;
    }
  }
  uint64_t live_sampled = 0;
  for (const auto& frame : analysis.frames) live_sampled += frame.self;
  out += "Top allocation sites by live sampled bytes:\n";
  out += "      SELF_KB      TOTAL_KB   SELF%  FUNCTION\n";
  const double denom =
      live_sampled > 0 ? static_cast<double>(live_sampled) : 1.0;
  size_t shown = 0;
  for (const auto& frame : analysis.frames) {
    if (frame.self == 0 || shown >= top_n) break;
    std::snprintf(buf, sizeof(buf), "  %11s %13s  %5.1f%%  %s\n",
                  FormatKb(frame.self).c_str(), FormatKb(frame.total).c_str(),
                  100.0 * static_cast<double>(frame.self) / denom,
                  frame.name.c_str());
    out += buf;
    ++shown;
  }
  if (!analysis.spans.empty()) {
    out += "Live sampled bytes by span:\n";
    for (const auto& span : analysis.spans) {
      std::snprintf(buf, sizeof(buf), "  %11s  %5.1f%%  %s\n",
                    FormatKb(span.samples).c_str(), span.pct,
                    span.name.c_str());
      out += buf;
    }
  }
  return out;
}

std::string HeapAnalysisToJson(const ProfileAnalysis& analysis,
                               const HeapProfileHeader& header,
                               size_t top_n) {
  auto escape = [](const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char hex[8];
        std::snprintf(hex, sizeof(hex), "\\u%04x", c);
        out += hex;
      } else {
        out += c;
      }
    }
    return out;
  };
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"sample_kb\":%zu,\"samples\":%llu,\"dropped\":%llu,"
                "\"duration_s\":%.3f,\"live_bytes\":%llu,\"live_allocs\":"
                "%llu,\"peak_rss_kb\":%llu,\"spans\":[",
                header.sample_kb,
                static_cast<unsigned long long>(analysis.samples),
                static_cast<unsigned long long>(analysis.dropped),
                analysis.duration_s,
                static_cast<unsigned long long>(header.live_bytes),
                static_cast<unsigned long long>(header.live_allocs),
                static_cast<unsigned long long>(header.peak_rss_kb));
  std::string out = buf;
  bool first = true;
  for (const SpanBytes& span : header.spans) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"live_bytes\":%llu,\"cum_bytes\":%llu,"
                  "\"allocs\":%llu}",
                  escape(span.span).c_str(),
                  static_cast<unsigned long long>(span.live_bytes),
                  static_cast<unsigned long long>(span.cum_bytes),
                  static_cast<unsigned long long>(span.allocs));
    out += buf;
  }
  out += "],\"top_sites\":[";
  uint64_t live_sampled = 0;
  for (const auto& frame : analysis.frames) live_sampled += frame.self;
  const double denom =
      live_sampled > 0 ? static_cast<double>(live_sampled) : 1.0;
  first = true;
  size_t shown = 0;
  for (const auto& frame : analysis.frames) {
    if (frame.self == 0 || shown >= top_n) break;
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"self_bytes\":%llu,\"total_bytes\":"
                  "%llu,\"self_pct\":%.2f}",
                  escape(frame.name).c_str(),
                  static_cast<unsigned long long>(frame.self),
                  static_cast<unsigned long long>(frame.total),
                  100.0 * static_cast<double>(frame.self) / denom);
    out += buf;
    ++shown;
  }
  out += "]}";
  return out;
}

#if LTEE_MEMTRACK_INTERPOSE
/// External-linkage bridges so the global operator replacements (outside
/// this namespace) can reach the file-local hook implementations. Forced
/// inline: they must not add a stack frame between the operator and
/// TrackedAlloc, or the collect-time frame scrub would miscount.
namespace memtrack_internal {
LTEE_MEMTRACK_INLINE void* Alloc(std::size_t size, std::size_t align) {
  return TrackedAlloc(size, align);
}
LTEE_MEMTRACK_INLINE void Free(void* ptr) { TrackedFree(ptr); }
}  // namespace memtrack_internal
#endif

}  // namespace ltee::obsv

// ---------------------------------------------------------------------------
// Global operator new/delete replacements. Outside any namespace by
// definition; every variant funnels into TrackedAlloc/TrackedFree so a
// pointer allocated by one variant frees correctly through any other.

#if LTEE_MEMTRACK_INTERPOSE

namespace {

LTEE_MEMTRACK_INLINE void* ThrowingNew(std::size_t size, std::size_t align) {
  for (;;) {
    if (void* ptr = ltee::obsv::memtrack_internal::Alloc(size, align)) {
      return ptr;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

}  // namespace

void* operator new(std::size_t size) { return ThrowingNew(size, 0); }

void* operator new[](std::size_t size) { return ThrowingNew(size, 0); }

void* operator new(std::size_t size, std::align_val_t align) {
  return ThrowingNew(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ThrowingNew(size, static_cast<std::size_t>(align));
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return ThrowingNew(size, 0);
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return ThrowingNew(size, 0);
  } catch (...) {
    return nullptr;
  }
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  try {
    return ThrowingNew(size, static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  try {
    return ThrowingNew(size, static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* ptr) noexcept { ltee::obsv::memtrack_internal::Free(ptr); }
void operator delete[](void* ptr) noexcept {
  ltee::obsv::memtrack_internal::Free(ptr);
}
void operator delete(void* ptr, std::size_t) noexcept {
  ltee::obsv::memtrack_internal::Free(ptr);
}
void operator delete[](void* ptr, std::size_t) noexcept {
  ltee::obsv::memtrack_internal::Free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  ltee::obsv::memtrack_internal::Free(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  ltee::obsv::memtrack_internal::Free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  ltee::obsv::memtrack_internal::Free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  ltee::obsv::memtrack_internal::Free(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  ltee::obsv::memtrack_internal::Free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  ltee::obsv::memtrack_internal::Free(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  ltee::obsv::memtrack_internal::Free(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  ltee::obsv::memtrack_internal::Free(ptr);
}

#endif  // LTEE_MEMTRACK_INTERPOSE
