#ifndef LTEE_OBSV_REGRESSION_GATE_H_
#define LTEE_OBSV_REGRESSION_GATE_H_

#include <map>
#include <string>
#include <vector>

#include "util/json_parse.h"

namespace ltee::obsv {

/// The perf-regression comparison core behind tools/report_diff — pulled
/// into the library so the gating semantics (which units gate, in which
/// direction, against which threshold) are unit-testable without
/// spawning the CLI.

/// How a unit regresses. Direction comes from the unit string recorded
/// with each metric, never from the metric name.
enum class GateDirection { kHigherIsWorse, kLowerIsWorse, kInformational };

/// One flattened metric: a value plus the unit that decides its gating.
struct GateMetric {
  double value = 0.0;
  std::string unit;
};

/// name -> metric, flattened from a run report or bench-history entry.
using GateMetricMap = std::map<std::string, GateMetric>;

/// Unit -> direction:
///  - "seconds", "ms", "ns": wall/cpu time, regresses upward.
///  - "ms_p50", "ms_p95", "ms_p99" (any "ms_p*"): latency percentiles
///    from closed-loop load benches, regress upward but against the
///    dedicated `min_latency_ms` noise floor instead of `min_seconds`.
///  - "rate": quality-drift gauges, regress upward vs quality threshold.
///  - "pct": absolute overhead percentages (e.g. sampling-profiler
///    overhead), regress upward but only once either side crosses the
///    `min_pct` floor — an overhead that stays under the floor is free
///    by definition and never gates.
///  - "mb": memory footprints (peak RSS, heap high-water marks),
///    regress upward against the time threshold but only once either
///    side crosses the `min_mb` floor — small absolute footprints are
///    noise-dominated and never gate.
///  - "score", "f1": quality scores, regress downward.
///  - "ops_s": throughput, regresses downward vs the time threshold.
///  - everything else ("count", "ratio", "gauge", ...): informational.
GateDirection GateDirectionOf(const std::string& unit);

/// True for the latency-percentile family ("ms_p" prefix).
bool IsLatencyPercentileUnit(const std::string& unit);

/// Flattens one parsed snapshot into `out`. Accepts bench-history
/// entries ({"results":[{"bench":..,"metric":..,"value":..,"unit":..}]})
/// and RunReport JSON ({"total_seconds":..,"stages":..,"metrics":..});
/// run-report gauges ending in `_rate` flatten with unit "rate",
/// `_ratio` with "ratio", the rest with "gauge"; a positive
/// `peak_rss_bytes` flattens to `run/peak_rss_mb` with unit "mb" so
/// memory regressions gate alongside time. Returns false (with a
/// description in `error`) when the document is neither form.
bool FlattenGateSnapshot(const util::JsonValue& doc, GateMetricMap* out,
                         std::string* error);

/// Relative thresholds, as fractions (0.25 = 25%).
struct GateThresholds {
  double time = 0.25;     ///< allowed relative time/latency increase
  double score = 0.05;    ///< allowed relative score/throughput drop
  double quality = 0.10;  ///< allowed relative drift-rate increase
  /// Time pairs where both sides are below this many seconds are noise
  /// and never gate.
  double min_seconds = 0.05;
  /// Same floor for the "ms_p*" latency-percentile units, in ms: an
  /// in-process query that moves from 5us to 15us is +200% but
  /// meaningless; only percentiles at millisecond scale gate.
  double min_latency_ms = 1.0;
  /// Floor for the "pct" overhead unit, in absolute percent: pairs where
  /// both sides stay below never gate (0.4% -> 1.2% is tripled but
  /// negligible). The default encodes the profiler's <3%-overhead
  /// budget.
  double min_pct = 3.0;
  /// Floor for the "mb" memory unit, in megabytes: pairs where both
  /// sides stay below never gate (a 12 MB -> 30 MB blip is +150% but
  /// allocator noise at that scale). Runs already past the floor gate
  /// on any relative increase beyond the time threshold.
  double min_mb = 50.0;
};

/// One compared metric of a gate run.
struct GateDelta {
  std::string name;
  GateMetric before;
  GateMetric after;
  double rel = 0.0;  ///< (after - before) / |before|
  GateDirection direction = GateDirection::kInformational;
  bool regressed = false;
};

/// Outcome of comparing two flattened snapshots.
struct GateReport {
  std::vector<GateDelta> deltas;  ///< intersection of both maps, by name
  size_t compared = 0;
  size_t regressions = 0;
};

/// Compares the metrics present in both maps under `thresholds`. Pure:
/// no printing, no exiting — report_diff renders the result.
GateReport CompareGateMetrics(const GateMetricMap& before,
                              const GateMetricMap& after,
                              const GateThresholds& thresholds);

}  // namespace ltee::obsv

#endif  // LTEE_OBSV_REGRESSION_GATE_H_
