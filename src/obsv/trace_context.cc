#include "obsv/trace_context.h"

#include <atomic>
#include <chrono>

#include "util/trace.h"

namespace ltee::obsv {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

bool IsLowerHex(std::string_view s) {
  for (char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

bool AllZero(std::string_view s) {
  for (char c : s) {
    if (c != '0') return false;
  }
  return true;
}

/// splitmix64 over a process-unique, clock-seeded counter: not
/// cryptographic, but collision-free in practice and dependency-free.
uint64_t NextRandom64() {
  static std::atomic<uint64_t> state{[] {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const auto wall = std::chrono::system_clock::now().time_since_epoch();
    return static_cast<uint64_t>(now.count()) ^
           (static_cast<uint64_t>(wall.count()) << 1);
  }()};
  uint64_t z = state.fetch_add(0x9e3779b97f4a7c15ull,
                               std::memory_order_relaxed) +
               0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::string RandomHex(size_t num_chars) {
  std::string out;
  out.reserve(num_chars);
  uint64_t bits = 0;
  size_t available = 0;
  while (out.size() < num_chars) {
    if (available == 0) {
      bits = NextRandom64();
      available = 16;
    }
    out.push_back(kHexDigits[bits & 0xf]);
    bits >>= 4;
    --available;
  }
  // An all-zero id is invalid per the spec; one flipped nibble fixes the
  // astronomically unlikely draw.
  if (AllZero(out)) out[0] = '1';
  return out;
}

}  // namespace

std::string TraceContext::ToTraceparent() const {
  return "00-" + trace_id + "-" + span_id + "-01";
}

TraceContext MakeRootContext() {
  TraceContext context;
  context.trace_id = RandomHex(32);
  context.span_id = RandomHex(16);
  return context;
}

bool IsValidTraceparent(std::string_view value) {
  // version "-" trace-id "-" parent-id "-" flags, all lowercase hex.
  if (value.size() != 55) return false;
  if (value[2] != '-' || value[35] != '-' || value[52] != '-') return false;
  const std::string_view version = value.substr(0, 2);
  const std::string_view trace_id = value.substr(3, 32);
  const std::string_view span_id = value.substr(36, 16);
  const std::string_view flags = value.substr(53, 2);
  if (!IsLowerHex(version) || !IsLowerHex(trace_id) || !IsLowerHex(span_id) ||
      !IsLowerHex(flags)) {
    return false;
  }
  if (version == "ff") return false;  // forbidden by the spec
  if (AllZero(trace_id) || AllZero(span_id)) return false;
  return true;
}

std::optional<TraceContext> ChildFromTraceparent(
    std::string_view traceparent_header) {
  if (!IsValidTraceparent(traceparent_header)) return std::nullopt;
  TraceContext context;
  context.trace_id.assign(traceparent_header.substr(3, 32));
  context.parent_span_id.assign(traceparent_header.substr(36, 16));
  context.span_id = RandomHex(16);
  return context;
}

TraceContextScope::TraceContextScope(const TraceContext& context)
    : saved_trace_id_(util::trace::CurrentTraceId()),
      saved_span_id_(util::trace::CurrentSpanId()) {
  util::trace::SetCurrentContext(context.trace_id, context.span_id);
}

TraceContextScope::~TraceContextScope() {
  if (saved_trace_id_.empty()) {
    util::trace::ClearCurrentContext();
  } else {
    util::trace::SetCurrentContext(std::move(saved_trace_id_),
                                   std::move(saved_span_id_));
  }
}

}  // namespace ltee::obsv
