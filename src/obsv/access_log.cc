#include "obsv/access_log.h"

#include <chrono>
#include <cstdlib>

#include "util/json.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace ltee::obsv {

std::string AccessEntry::ToJson() const {
  std::string out = "{\"unix_ms\":";
  out += std::to_string(unix_ms);
  out += ",\"method\":";
  out += util::JsonQuote(method);
  out += ",\"target\":";
  out += util::JsonQuote(target);
  out += ",\"status\":";
  out += std::to_string(status);
  out += ",\"total_ms\":";
  util::AppendJsonNumber(&out, total_ms);
  out += ",\"read_ms\":";
  util::AppendJsonNumber(&out, read_ms);
  out += ",\"handle_ms\":";
  util::AppendJsonNumber(&out, handle_ms);
  out += ",\"write_ms\":";
  util::AppendJsonNumber(&out, write_ms);
  out += ",\"trace_id\":";
  out += util::JsonQuote(trace_id);
  out += ",\"response_bytes\":";
  out += std::to_string(response_bytes);
  out += "}";
  return out;
}

AccessLog::AccessLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void AccessLog::SetSlowThresholdMs(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  slow_threshold_ms_ = ms;
}

double AccessLog::slow_threshold_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_threshold_ms_;
}

void AccessLog::Record(AccessEntry entry) {
  bool slow = false;
  double threshold = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++total_;
    threshold = slow_threshold_ms_;
    slow = threshold > 0.0 && entry.total_ms >= threshold;
    if (slow) ++slow_;
    if (ring_.size() < capacity_) {
      ring_.push_back(entry);
    } else {
      ring_[next_] = entry;
    }
    next_ = (next_ + 1) % capacity_;
  }
  util::Metrics().GetCounter("ltee.http.requests").Increment();
  if (slow) {
    util::Metrics().GetCounter("ltee.http.slow_requests").Increment();
    // The full per-stage breakdown, emitted while the request's trace
    // context is still installed so the line carries the trace id too.
    LTEE_LOG(kWarning) << "slow request " << entry.method << " "
                       << entry.target << " status=" << entry.status
                       << " total=" << entry.total_ms << "ms (read="
                       << entry.read_ms << "ms handle=" << entry.handle_ms
                       << "ms write=" << entry.write_ms << "ms, threshold="
                       << threshold << "ms) trace=" << entry.trace_id;
  }
}

std::vector<AccessEntry> AccessLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AccessEntry> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::string AccessLog::ToJsonLines() const {
  std::string out;
  for (const AccessEntry& entry : Entries()) {
    out += entry.ToJson();
    out += "\n";
  }
  return out;
}

size_t AccessLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t AccessLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t AccessLog::slow_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_;
}

void AccessLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
  slow_ = 0;
}

AccessLog& GlobalAccessLog() {
  static AccessLog* log = [] {
    size_t capacity = 1024;
    if (const char* env = std::getenv("LTEE_ACCESS_LOG_CAPACITY");
        env != nullptr && *env != '\0') {
      const long long parsed = std::atoll(env);
      if (parsed > 0) capacity = static_cast<size_t>(parsed);
    }
    auto* l = new AccessLog(capacity);
    if (const char* env = std::getenv("LTEE_SLOW_REQUEST_MS");
        env != nullptr && *env != '\0') {
      l->SetSlowThresholdMs(std::atof(env));
    }
    return l;
  }();
  return *log;
}

}  // namespace ltee::obsv
