#include "obsv/crash_flush.h"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <mutex>

#include "obsv/access_log.h"
#include "obsv/memtrack.h"
#include "obsv/profiler.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ltee::obsv {

namespace {

struct FlushState {
  std::mutex mu;
  bool armed = false;
  bool installed = false;
  std::string trace_path;
  std::string metrics_path;
  std::string access_log_path;
  std::string profile_path;
  std::string heap_profile_path;
  std::terminate_handler previous_terminate = nullptr;
};

FlushState& State() {
  static FlushState* state = new FlushState();
  return *state;
}

void WriteFile(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "crash flush: cannot write %s\n", path.c_str());
    return;
  }
  out << body << "\n";
}

[[noreturn]] void TerminateHandler() {
  CrashFlushNow();
  std::terminate_handler previous;
  {
    std::lock_guard<std::mutex> lock(State().mu);
    previous = State().previous_terminate;
  }
  if (previous != nullptr) previous();
  std::abort();
}

void AtExitHandler() { CrashFlushNow(); }

}  // namespace

void ArmCrashFlush(std::string trace_path, std::string metrics_path,
                   std::string access_log_path, std::string profile_path,
                   std::string heap_profile_path) {
  FlushState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.trace_path = std::move(trace_path);
  state.metrics_path = std::move(metrics_path);
  state.access_log_path = std::move(access_log_path);
  state.profile_path = std::move(profile_path);
  state.heap_profile_path = std::move(heap_profile_path);
  state.armed = true;
  if (!state.installed) {
    state.installed = true;
    state.previous_terminate = std::set_terminate(&TerminateHandler);
    std::atexit(&AtExitHandler);
  }
}

void DisarmCrashFlush() {
  FlushState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.armed = false;
}

bool CrashFlushNow() {
  std::string trace_path, metrics_path, access_log_path, profile_path;
  std::string heap_profile_path;
  {
    FlushState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.armed) return false;
    state.armed = false;  // write once, even if terminate + atexit both fire
    trace_path = state.trace_path;
    metrics_path = state.metrics_path;
    access_log_path = state.access_log_path;
    profile_path = state.profile_path;
    heap_profile_path = state.heap_profile_path;
  }
  if (!trace_path.empty()) {
    WriteFile(trace_path, util::trace::ExportChromeTrace());
    std::fprintf(stderr, "crash flush: trace written to %s\n",
                 trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    // RunReport-shaped so report_diff and other consumers parse it; the
    // aborted flag distinguishes it from a completed run's report.
    std::string body =
        "{\"total_seconds\":0,\"stages\":[],\"classes\":[],"
        "\"aborted\":true,\"metrics\":";
    body += util::Metrics().Snapshot().ToJson();
    body += "}";
    WriteFile(metrics_path, body);
    std::fprintf(stderr, "crash flush: metrics written to %s\n",
                 metrics_path.c_str());
  }
  if (!access_log_path.empty()) {
    // The last requests before the crash — the ones most likely to have
    // caused it — as JSON lines, oldest first.
    WriteFile(access_log_path, GlobalAccessLog().ToJsonLines());
    std::fprintf(stderr, "crash flush: access log written to %s\n",
                 access_log_path.c_str());
  }
  bool profile_written = false;
  if (!profile_path.empty() &&
      (ProfilerActive() || CurrentProfileStats().samples > 0)) {
    // Stop sampling and write whatever was collected — a partial profile
    // of a crashed run still points at the code that was burning CPU.
    WriteFile(profile_path, CollectCollapsedProfile());
    std::fprintf(stderr, "crash flush: partial profile written to %s\n",
                 profile_path.c_str());
    profile_written = true;
  }
  bool heap_profile_written = false;
  if (!heap_profile_path.empty() &&
      (HeapProfilerActive() || CurrentHeapProfileStats().samples > 0)) {
    // Same idea for the heap: the sampled allocation stacks gathered so
    // far say where the bytes went before the process died.
    WriteFile(heap_profile_path, CollectCollapsedHeapProfile());
    std::fprintf(stderr, "crash flush: partial heap profile written to %s\n",
                 heap_profile_path.c_str());
    heap_profile_written = true;
  }
  return !trace_path.empty() || !metrics_path.empty() ||
         !access_log_path.empty() || profile_written ||
         heap_profile_written;
}

}  // namespace ltee::obsv
