#include "obsv/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "obsv/access_log.h"
#include "obsv/telemetry.h"
#include "obsv/trace_context.h"
#include "util/logging.h"
#include "util/trace.h"

namespace ltee::obsv {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

void SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away; nothing useful to do
    }
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

std::string HttpRequest::Header(std::string_view name) const {
  for (const auto& [header_name, value] : headers) {
    if (header_name == name) return value;
  }
  return "";
}

std::string QueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < end &&
        query.compare(pos, eq - pos, key) == 0) {
      std::string out;
      for (size_t i = eq + 1; i < end; ++i) {
        const char c = query[i];
        if (c == '+') {
          out.push_back(' ');
        } else if (c == '%' && i + 2 < end) {
          const auto hex = [](char h) -> int {
            if (h >= '0' && h <= '9') return h - '0';
            if (h >= 'a' && h <= 'f') return h - 'a' + 10;
            if (h >= 'A' && h <= 'F') return h - 'A' + 10;
            return -1;
          };
          const int hi = hex(query[i + 1]), lo = hex(query[i + 2]);
          if (hi >= 0 && lo >= 0) {
            out.push_back(static_cast<char>(hi * 16 + lo));
            i += 2;
          } else {
            out.push_back(c);
          }
        } else {
          out.push_back(c);
        }
      }
      return out;
    }
    pos = end + 1;
  }
  return "";
}

HttpServer::HttpServer(size_t num_workers)
    : num_workers_(num_workers == 0 ? 1 : num_workers) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(std::string path, HttpHandler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

bool HttpServer::Start(uint16_t port, std::string* error) {
  if (running_.load()) {
    if (error != nullptr) *error = "server already running";
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }

  pool_ = std::make_unique<util::ThreadPool>(num_workers_);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  LTEE_LOG(kInfo) << "http server listening on port " << port_
                  << (port == 0 ? " (ephemeral)" : "");
  return true;
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // shutdown() unblocks the accept(2) in the accept thread; close alone
  // is not guaranteed to.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  pool_->Wait();
  pool_.reset();
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running_.load()) break;
      LTEE_LOG(kWarning) << "status server accept failed: "
                         << std::strerror(errno);
      break;
    }
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    pool_->Submit([this, fd] { ServeConnection(fd); });
  }
}

void HttpServer::ServeConnection(int fd) {
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  const auto request_start = std::chrono::steady_clock::now();

  // Read until the end of the request head. Requests are tiny
  // (`GET /path HTTP/1.1` + a few headers); 8 KiB is a generous cap.
  std::string request;
  char buf[2048];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<size_t>(n));
  }

  HttpResponse response;
  const size_t line_end = request.find_first_of("\r\n");
  std::string method, target, version;
  if (line_end != std::string::npos) {
    const std::string line = request.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                : line.find(' ', sp1 + 1);
    if (sp1 != std::string::npos && sp2 != std::string::npos) {
      method = line.substr(0, sp1);
      target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      version = line.substr(sp2 + 1);
    }
  }
  HttpRequest http_request;
  http_request.method = method;
  const std::string raw_target = target;
  if (const size_t q = target.find('?'); q != std::string::npos) {
    http_request.query = target.substr(q + 1);
    target.resize(q);
  }
  http_request.path = target;

  // Header fields after the request line, names lowercased. A field that
  // does not parse (no colon) is skipped rather than failing the request
  // — the handlers only ever look up well-known names.
  size_t cursor = request.find('\n', line_end == std::string::npos
                                        ? 0
                                        : line_end);
  while (cursor != std::string::npos && cursor + 1 < request.size()) {
    const size_t start = cursor + 1;
    size_t end = request.find('\n', start);
    if (end == std::string::npos) end = request.size();
    size_t len = end - start;
    if (len > 0 && request[start + len - 1] == '\r') --len;
    if (len == 0) break;  // blank line: end of head
    const std::string_view field(request.data() + start, len);
    if (const size_t colon = field.find(':'); colon != std::string_view::npos) {
      std::string name;
      name.reserve(colon);
      for (char c : field.substr(0, colon)) {
        name.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
      }
      std::string_view value = field.substr(colon + 1);
      while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
        value.remove_prefix(1);
      }
      while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
        value.remove_suffix(1);
      }
      http_request.headers.emplace_back(std::move(name), std::string(value));
    }
    cursor = end;
  }

  // Request-scoped trace context: continue the caller's trace when a
  // valid traceparent arrived; a malformed or absent header starts a
  // fresh trace (never reuse garbage, never fail the request over it).
  TraceContext trace_context;
  if (auto child = ChildFromTraceparent(http_request.Header("traceparent"));
      child.has_value()) {
    trace_context = std::move(*child);
  } else {
    trace_context = MakeRootContext();
  }
  http_request.trace_id = trace_context.trace_id;

  const double read_ms = MsSince(request_start);
  const auto handle_start = std::chrono::steady_clock::now();
  {
    TraceContextScope trace_scope(trace_context);
    util::trace::ScopedSpan span("http.request", "http");

    // RFC 9112 request line: `method SP request-target SP HTTP-version`.
    // Anything that does not parse into those three shapes — missing
    // tokens, a version that is not HTTP/*, a target that is not
    // origin-form — gets an explicit 400 rather than a silently dropped
    // connection, so misbehaving clients see what went wrong.
    if (method.empty() || target.empty() ||
        version.rfind("HTTP/", 0) != 0 || target[0] != '/') {
      response.status = 400;
      response.body = "malformed request line\n";
    } else if (method != "GET" && method != "HEAD") {
      // RFC 9110: a 405 must name the allowed methods.
      response.status = 405;
      response.body = "only GET is supported\n";
      response.headers.emplace_back("Allow", "GET");
    } else {
      auto it = handlers_.find(target);
      if (it == handlers_.end()) {
        response.status = 404;
        response.body = "unknown endpoint: " + target + "\n";
      } else {
        response = it->second(http_request);
      }
    }
    span.AddArg("method", method.empty() ? std::string("?") : method);
    span.AddArg("target", raw_target);
    span.AddArg("status", response.status);
  }
  const double handle_ms = MsSince(handle_start);
  const auto write_start = std::chrono::steady_clock::now();

  // Every response names the trace it belongs to, so callers can join
  // their side of a request with the server's access log and spans.
  response.headers.emplace_back("traceparent",
                                trace_context.ToTraceparent());

  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     StatusText(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(response.body.size());
  for (const auto& [name, value] : response.headers) {
    head += "\r\n" + name + ": " + value;
  }
  head += "\r\nConnection: close\r\n\r\n";
  SendAll(fd, head);
  if (method != "HEAD") SendAll(fd, response.body);
  ::shutdown(fd, SHUT_WR);
  // Drain whatever the peer still sends so the close is graceful, then
  // close.
  while (::recv(fd, buf, sizeof(buf), 0) > 0) {
  }
  ::close(fd);

  const double write_ms = MsSince(write_start);
  AccessEntry entry;
  entry.unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count();
  entry.method = method;
  entry.target = raw_target;
  entry.status = response.status;
  entry.read_ms = read_ms;
  entry.handle_ms = handle_ms;
  entry.write_ms = write_ms;
  entry.total_ms = read_ms + handle_ms + write_ms;
  entry.trace_id = trace_context.trace_id;
  entry.response_bytes = response.body.size();
  {
    // Recorded under the request's context so a slow-request WARNING
    // line carries the trace id.
    TraceContextScope trace_scope(trace_context);
    GlobalAccessLog().Record(std::move(entry));
  }
  GlobalRequestTelemetry().ObserveRequest(read_ms + handle_ms + write_ms);
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace ltee::obsv
