#ifndef LTEE_OBSV_TRACE_CONTEXT_H_
#define LTEE_OBSV_TRACE_CONTEXT_H_

#include <optional>
#include <string>
#include <string_view>

namespace ltee::obsv {

/// Request-scoped trace identity in the W3C Trace Context shape: a
/// 16-byte trace id and an 8-byte span id, both lowercase hex, carried on
/// the wire as a `traceparent` header
///
///   traceparent: 00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>
///
/// HttpServer mints one context per request (continuing the caller's
/// trace when a valid header arrives, starting a fresh trace otherwise),
/// HttpGet propagates the calling thread's context downstream, and
/// TraceContextScope installs the ids into util::trace so spans and log
/// lines of the request all carry the same trace id.
struct TraceContext {
  std::string trace_id;        // 32 lowercase hex chars, never all zero
  std::string span_id;         // this hop's span, 16 lowercase hex chars
  std::string parent_span_id;  // caller's span id; empty at the trace root

  /// `00-<trace_id>-<span_id>-01` — the header value for the next hop.
  std::string ToTraceparent() const;
};

/// A fresh root context: random trace and span ids. Thread-safe; ids are
/// unique per process with overwhelming probability (128 random bits
/// seeded from the clock, mixed per call).
TraceContext MakeRootContext();

/// A child context continuing the trace of `traceparent_header`: same
/// trace id, fresh span id, parent set to the caller's span id. Returns
/// nullopt when the header is not a well-formed traceparent (wrong
/// shape, non-hex digits, unsupported version ff, all-zero ids) — the
/// caller then falls back to MakeRootContext, never to reusing garbage.
std::optional<TraceContext> ChildFromTraceparent(
    std::string_view traceparent_header);

/// True when `value` parses as a well-formed traceparent header.
bool IsValidTraceparent(std::string_view value);

/// RAII installer: publishes the context's ids as the calling thread's
/// util::trace current context for the scope's lifetime, restoring the
/// previous context (usually none) on destruction.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& context);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  std::string saved_trace_id_;
  std::string saved_span_id_;
};

}  // namespace ltee::obsv

#endif  // LTEE_OBSV_TRACE_CONTEXT_H_
