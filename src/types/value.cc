#include "types/value.h"

#include <cstdio>

#include "util/string_util.h"

namespace ltee::types {

std::string_view DataTypeName(DataType t) {
  switch (t) {
    case DataType::kText: return "text";
    case DataType::kNominalString: return "nominal_string";
    case DataType::kInstanceReference: return "instance_reference";
    case DataType::kDate: return "date";
    case DataType::kQuantity: return "quantity";
    case DataType::kNominalInteger: return "nominal_integer";
  }
  return "?";
}

std::string_view DetectedTypeName(DetectedType t) {
  switch (t) {
    case DetectedType::kText: return "text";
    case DetectedType::kDate: return "date";
    case DetectedType::kQuantity: return "quantity";
  }
  return "?";
}

bool DetectedTypeAdmitsProperty(DetectedType detected, DataType property_type) {
  switch (detected) {
    case DetectedType::kText:
      return property_type == DataType::kInstanceReference ||
             property_type == DataType::kNominalString ||
             property_type == DataType::kText;
    case DetectedType::kQuantity:
      return property_type == DataType::kQuantity ||
             property_type == DataType::kNominalInteger;
    case DetectedType::kDate:
      return property_type == DataType::kDate ||
             property_type == DataType::kQuantity ||
             property_type == DataType::kNominalInteger;
  }
  return false;
}

Value Value::Text(std::string s) {
  Value v;
  v.type = DataType::kText;
  v.text = std::move(s);
  return v;
}

Value Value::Nominal(std::string s) {
  Value v;
  v.type = DataType::kNominalString;
  v.text = std::move(s);
  return v;
}

Value Value::InstanceRef(std::string label, int32_t ref_id) {
  Value v;
  v.type = DataType::kInstanceReference;
  v.text = std::move(label);
  v.ref = ref_id;
  return v;
}

Value Value::OfQuantity(double q) {
  Value v;
  v.type = DataType::kQuantity;
  v.number = q;
  return v;
}

Value Value::OfInteger(int64_t i) {
  Value v;
  v.type = DataType::kNominalInteger;
  v.integer = i;
  return v;
}

Value Value::OfDate(Date d) {
  Value v;
  v.type = DataType::kDate;
  v.date = d;
  return v;
}

Value Value::YearDate(int year) {
  Date d;
  d.year = static_cast<int16_t>(year);
  d.granularity = DateGranularity::kYear;
  return OfDate(d);
}

Value Value::DayDate(int year, int month, int day) {
  Date d;
  d.year = static_cast<int16_t>(year);
  d.month = static_cast<int8_t>(month);
  d.day = static_cast<int8_t>(day);
  d.granularity = DateGranularity::kDay;
  return OfDate(d);
}

std::string Value::ToString() const {
  char buf[64];
  switch (type) {
    case DataType::kText:
    case DataType::kNominalString:
      return text;
    case DataType::kInstanceReference:
      return "@" + text;
    case DataType::kDate:
      if (date.granularity == DateGranularity::kYear) {
        std::snprintf(buf, sizeof(buf), "%d", date.year);
      } else {
        std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", date.year,
                      date.month, date.day);
      }
      return buf;
    case DataType::kQuantity:
      std::snprintf(buf, sizeof(buf), "%g", number);
      return buf;
    case DataType::kNominalInteger:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(integer));
      return buf;
  }
  return "?";
}

}  // namespace ltee::types
