#ifndef LTEE_TYPES_VALUE_H_
#define LTEE_TYPES_VALUE_H_

#include <cstdint>
#include <string>

#include "types/data_type.h"

namespace ltee::types {

/// Granularity of a date value: the paper distinguishes dates known only to
/// the year (draft year) from full dates (birth date).
enum class DateGranularity : uint8_t { kYear = 0, kDay = 1 };

/// A calendar date with explicit granularity.
struct Date {
  int16_t year = 0;
  int8_t month = 0;  // 1-12; 0 when granularity is kYear
  int8_t day = 0;    // 1-31; 0 when granularity is kYear
  DateGranularity granularity = DateGranularity::kYear;

  friend bool operator==(const Date&, const Date&) = default;
};

/// A typed value: a cell after normalization, a KB fact, or a fused fact of
/// a created entity. A tagged struct (not std::variant) keeps the hot
/// comparison paths simple and cache-friendly.
///
/// Field usage per type:
///  - kText / kNominalString: `text` holds the normalized string.
///  - kInstanceReference: `text` holds the normalized referenced label and
///    `ref` the KB instance id when resolved (-1 otherwise).
///  - kDate: `date`.
///  - kQuantity: `number`.
///  - kNominalInteger: `integer`.
struct Value {
  DataType type = DataType::kText;
  std::string text;
  double number = 0.0;
  int64_t integer = 0;
  int32_t ref = -1;
  Date date;

  static Value Text(std::string s);
  static Value Nominal(std::string s);
  static Value InstanceRef(std::string label, int32_t ref_id = -1);
  static Value OfQuantity(double q);
  static Value OfInteger(int64_t i);
  static Value OfDate(Date d);
  static Value YearDate(int year);
  static Value DayDate(int year, int month, int day);

  /// Compact human-readable rendering for logs and benches.
  std::string ToString() const;
};

}  // namespace ltee::types

#endif  // LTEE_TYPES_VALUE_H_
