#ifndef LTEE_TYPES_DATA_TYPE_H_
#define LTEE_TYPES_DATA_TYPE_H_

#include <cstdint>
#include <string_view>

namespace ltee::types {

/// The six semantic data types of the paper (Section 3.1). Each type has a
/// similarity function and an equivalence threshold (see type_similarity.h).
enum class DataType : uint8_t {
  /// Free-form string; two strings need not be exactly equal to be similar
  /// (e.g. the label of an instance).
  kText = 0,
  /// String with all-or-nothing equality (e.g. an ISO country code).
  kNominalString = 1,
  /// Reference to another instance (e.g. the team of an athlete).
  kInstanceReference = 2,
  /// Date with year or day granularity (e.g. a release date).
  kDate = 3,
  /// Numeric quantity where closeness is semantically meaningful
  /// (e.g. population of a settlement).
  kQuantity = 4,
  /// Integer where nearby numbers are *not* related (e.g. a jersey number
  /// or draft round).
  kNominalInteger = 5,
};

inline constexpr int kNumDataTypes = 6;

/// The three syntactic types assignable by the regex-based data-type
/// detector (Section 3.1). The remaining three semantic types require
/// knowing the matched KB property and are assigned after
/// attribute-to-property matching.
enum class DetectedType : uint8_t { kText = 0, kDate = 1, kQuantity = 2 };

/// Human-readable names (for logs, benches, and debug output).
std::string_view DataTypeName(DataType t);
std::string_view DetectedTypeName(DetectedType t);

/// True if a table attribute detected as `detected` may match a KB property
/// of semantic type `property_type` (the candidate-filtering rule of the
/// attribute-to-property matcher): text attributes match instance
/// references, nominal strings and text; quantity attributes match
/// quantities and nominal integers; date attributes match dates, quantities
/// and nominal integers.
bool DetectedTypeAdmitsProperty(DetectedType detected, DataType property_type);

}  // namespace ltee::types

#endif  // LTEE_TYPES_DATA_TYPE_H_
