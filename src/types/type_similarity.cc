#include "types/type_similarity.h"

#include <algorithm>
#include <cmath>

#include "util/similarity.h"

namespace ltee::types {

namespace {

double DateSimilarity(const Date& a, const Date& b) {
  if (a.year != b.year) return 0.0;
  if (a.granularity == DateGranularity::kYear ||
      b.granularity == DateGranularity::kYear) {
    // Comparable only at year granularity: equal years are a full match
    // when both are year-granular, a partial match when one side knows the
    // exact day.
    return a.granularity == b.granularity ? 1.0 : 0.5;
  }
  return (a.month == b.month && a.day == b.day) ? 1.0 : 0.5;
}

double QuantitySimilarity(double a, double b) {
  if (a == b) return 1.0;
  double denom = std::max(std::abs(a), std::abs(b));
  if (denom == 0.0) return 1.0;
  double rel = std::abs(a - b) / denom;
  return std::max(0.0, 1.0 - rel);
}

}  // namespace

double ValueSimilarity(const Value& a, const Value& b,
                       const TypeSimilarityOptions& options) {
  (void)options;
  if (a.type != b.type) return 0.0;
  switch (a.type) {
    case DataType::kText:
      return util::MongeElkanLevenshtein(a.text, b.text);
    case DataType::kNominalString:
      return a.text == b.text ? 1.0 : 0.0;
    case DataType::kInstanceReference:
      if (a.ref >= 0 && b.ref >= 0) return a.ref == b.ref ? 1.0 : 0.0;
      return util::MongeElkanLevenshtein(a.text, b.text);
    case DataType::kDate:
      return DateSimilarity(a.date, b.date);
    case DataType::kQuantity:
      return QuantitySimilarity(a.number, b.number);
    case DataType::kNominalInteger:
      return a.integer == b.integer ? 1.0 : 0.0;
  }
  return 0.0;
}

bool ValuesEqual(const Value& a, const Value& b,
                 const TypeSimilarityOptions& options) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case DataType::kText:
      return util::MongeElkanLevenshtein(a.text, b.text) >=
             options.text_equal_threshold;
    case DataType::kNominalString:
      return a.text == b.text;
    case DataType::kInstanceReference:
      if (a.ref >= 0 && b.ref >= 0) return a.ref == b.ref;
      return util::MongeElkanLevenshtein(a.text, b.text) >=
             options.instance_ref_equal_threshold;
    case DataType::kDate: {
      if (a.date.year != b.date.year) return false;
      if (a.date.granularity == DateGranularity::kYear ||
          b.date.granularity == DateGranularity::kYear) {
        return true;  // equal at the coarser granularity
      }
      return a.date.month == b.date.month && a.date.day == b.date.day;
    }
    case DataType::kQuantity: {
      double denom = std::max(std::abs(a.number), std::abs(b.number));
      if (denom == 0.0) return true;
      return std::abs(a.number - b.number) / denom <=
             options.quantity_tolerance;
    }
    case DataType::kNominalInteger:
      return a.integer == b.integer;
  }
  return false;
}

}  // namespace ltee::types
