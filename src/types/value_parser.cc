#include "types/value_parser.h"

#include <array>
#include <cctype>
#include <cmath>

#include "util/string_util.h"

namespace ltee::types {

namespace {

using util::IsDigits;
using util::NormalizeLabel;
using util::ParseNumberLenient;
using util::Split;
using util::ToLower;
using util::Trim;

constexpr std::array<std::string_view, 12> kMonthNames = {
    "january", "february", "march",     "april",   "may",      "june",
    "july",    "august",   "september", "october", "november", "december"};

int MonthFromName(std::string_view name) {
  std::string lower = ToLower(name);
  for (size_t i = 0; i < kMonthNames.size(); ++i) {
    // Accept both full names and 3-letter abbreviations ("jan", "sep").
    if (lower == kMonthNames[i] || (lower.size() >= 3 && kMonthNames[i].substr(0, 3) == lower.substr(0, 3) && lower.size() <= 4)) {
      return static_cast<int>(i) + 1;
    }
  }
  return 0;
}

bool ValidYmd(int y, int m, int d) {
  return y >= 1000 && y <= 2999 && m >= 1 && m <= 12 && d >= 1 && d <= 31;
}

int ToInt(std::string_view s) {
  int v = 0;
  for (char c : s) v = v * 10 + (c - '0');
  return v;
}

}  // namespace

std::optional<Date> ParseDate(std::string_view raw) {
  std::string_view s = Trim(raw);
  if (s.empty()) return std::nullopt;

  // Bare year: "1987".
  if (s.size() == 4 && IsDigits(s)) {
    int y = ToInt(s);
    if (y >= 1000 && y <= 2999) {
      Date d;
      d.year = static_cast<int16_t>(y);
      d.granularity = DateGranularity::kYear;
      return d;
    }
    return std::nullopt;
  }

  // ISO "YYYY-MM-DD".
  {
    auto parts = Split(s, "-");
    if (parts.size() == 3 && parts[0].size() == 4 && IsDigits(parts[0]) &&
        IsDigits(parts[1]) && IsDigits(parts[2])) {
      int y = ToInt(parts[0]), m = ToInt(parts[1]), d = ToInt(parts[2]);
      if (ValidYmd(y, m, d)) {
        Date out;
        out.year = static_cast<int16_t>(y);
        out.month = static_cast<int8_t>(m);
        out.day = static_cast<int8_t>(d);
        out.granularity = DateGranularity::kDay;
        return out;
      }
    }
  }

  // US "MM/DD/YYYY".
  {
    auto parts = Split(s, "/");
    if (parts.size() == 3 && IsDigits(parts[0]) && IsDigits(parts[1]) &&
        parts[2].size() == 4 && IsDigits(parts[2])) {
      int m = ToInt(parts[0]), d = ToInt(parts[1]), y = ToInt(parts[2]);
      if (ValidYmd(y, m, d)) {
        Date out;
        out.year = static_cast<int16_t>(y);
        out.month = static_cast<int8_t>(m);
        out.day = static_cast<int8_t>(d);
        out.granularity = DateGranularity::kDay;
        return out;
      }
    }
  }

  // "Month DD, YYYY" or "DD Month YYYY".
  {
    auto parts = Split(s, " ,");
    if (parts.size() == 3) {
      int m = MonthFromName(parts[0]);
      if (m > 0 && IsDigits(parts[1]) && parts[2].size() == 4 &&
          IsDigits(parts[2])) {
        int d = ToInt(parts[1]), y = ToInt(parts[2]);
        if (ValidYmd(y, m, d)) {
          Date out;
          out.year = static_cast<int16_t>(y);
          out.month = static_cast<int8_t>(m);
          out.day = static_cast<int8_t>(d);
          out.granularity = DateGranularity::kDay;
          return out;
        }
      }
      m = MonthFromName(parts[1]);
      if (m > 0 && IsDigits(parts[0]) && parts[2].size() == 4 &&
          IsDigits(parts[2])) {
        int d = ToInt(parts[0]), y = ToInt(parts[2]);
        if (ValidYmd(y, m, d)) {
          Date out;
          out.year = static_cast<int16_t>(y);
          out.month = static_cast<int8_t>(m);
          out.day = static_cast<int8_t>(d);
          out.granularity = DateGranularity::kDay;
          return out;
        }
      }
    }
  }

  return std::nullopt;
}

CellClassification ClassifyCell(std::string_view cell) {
  CellClassification out;
  std::string_view s = Trim(cell);
  if (auto d = ParseDate(s)) {
    out.type = DetectedType::kDate;
    out.value = Value::OfDate(*d);
    return out;
  }
  double num = 0.0;
  if (ParseNumberLenient(s, &num)) {
    out.type = DetectedType::kQuantity;
    out.value = Value::OfQuantity(num);
    return out;
  }
  out.type = DetectedType::kText;
  out.value = Value::Text(NormalizeLabel(s));
  return out;
}

DetectedType DetectColumnType(const std::vector<std::string>& cells) {
  int counts[3] = {0, 0, 0};
  for (const auto& cell : cells) {
    if (Trim(cell).empty()) continue;
    counts[static_cast<int>(ClassifyCell(cell).type)] += 1;
  }
  // Majority vote; ties break toward text, then date (matching the
  // conservative behaviour of the original regex cascade).
  int best = 0;
  for (int t = 1; t < 3; ++t) {
    if (counts[t] > counts[best]) best = t;
  }
  return static_cast<DetectedType>(best);
}

std::optional<Value> NormalizeCell(std::string_view cell, DataType target) {
  std::string_view s = Trim(cell);
  if (s.empty()) return std::nullopt;
  switch (target) {
    case DataType::kText:
      return Value::Text(NormalizeLabel(s));
    case DataType::kNominalString:
      return Value::Nominal(NormalizeLabel(s));
    case DataType::kInstanceReference:
      return Value::InstanceRef(NormalizeLabel(s));
    case DataType::kDate: {
      auto d = ParseDate(s);
      if (!d) return std::nullopt;
      return Value::OfDate(*d);
    }
    case DataType::kQuantity: {
      double num = 0.0;
      if (!ParseNumberLenient(s, &num)) return std::nullopt;
      return Value::OfQuantity(num);
    }
    case DataType::kNominalInteger: {
      double num = 0.0;
      if (!ParseNumberLenient(s, &num)) return std::nullopt;
      double rounded = std::round(num);
      if (std::abs(num - rounded) > 1e-9) return std::nullopt;
      return Value::OfInteger(static_cast<int64_t>(rounded));
    }
  }
  return std::nullopt;
}

}  // namespace ltee::types
