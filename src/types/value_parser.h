#ifndef LTEE_TYPES_VALUE_PARSER_H_
#define LTEE_TYPES_VALUE_PARSER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "types/value.h"

namespace ltee::types {

/// Result of syntactically classifying one raw cell string.
struct CellClassification {
  DetectedType type = DetectedType::kText;
  /// Parsed payload for date/quantity cells; normalized text otherwise.
  Value value;
};

/// Classifies a single cell string into one of the three detected types and
/// parses its payload. The recognizers are compiled equivalents of the
/// paper's "manually defined regular expressions":
///   dates:      "YYYY" (1000..2999), "YYYY-MM-DD", "MM/DD/YYYY",
///               "Month DD, YYYY", "DD Month YYYY"
///   quantities: optional sign, digits with optional thousands separators
///               and decimal point, optional unit suffix
///   text:       everything else
CellClassification ClassifyCell(std::string_view cell);

/// Majority vote over the non-empty cells of an attribute column: the
/// detected type of the attribute is the most common cell type (Section
/// 3.1, "we decide the data type of an attribute based on the majority data
/// type among its values"). Ties break toward text, then date.
DetectedType DetectColumnType(const std::vector<std::string>& cells);

/// Parses and normalizes a raw cell string into a value of the *semantic*
/// type `target` (after the attribute has been matched to a KB property).
/// Returns nullopt when the cell cannot be interpreted as `target`, e.g. a
/// prose cell for a quantity property.
std::optional<Value> NormalizeCell(std::string_view cell, DataType target);

/// Attempts to parse a date in any supported surface form.
std::optional<Date> ParseDate(std::string_view s);

}  // namespace ltee::types

#endif  // LTEE_TYPES_VALUE_PARSER_H_
