#ifndef LTEE_TYPES_TYPE_SIMILARITY_H_
#define LTEE_TYPES_TYPE_SIMILARITY_H_

#include "types/value.h"

namespace ltee::types {

/// Tunable parameters of the per-type similarity functions. Each data type
/// has "a corresponding similarity function, and an equivalence threshold,
/// which is used to determine if the compared values are equal" (Section
/// 3.1). The quantity tolerance is the "learned tolerance range" used by
/// the facts-found evaluation; the defaults reproduce the behaviour used
/// throughout the paper's experiments.
struct TypeSimilarityOptions {
  /// Monge-Elkan/Levenshtein threshold above which two text values are
  /// considered equal.
  double text_equal_threshold = 0.85;
  /// Label-similarity threshold for unresolved instance references.
  double instance_ref_equal_threshold = 0.90;
  /// Maximum relative difference for two quantities to count as equal.
  double quantity_tolerance = 0.025;
};

/// Similarity in [0, 1] between two values of the same data type. Values of
/// different types score 0. Semantics per type:
///  - text: Monge-Elkan with Levenshtein inner similarity
///  - nominal string: exact (1/0) on the normalized form
///  - instance reference: 1/0 on resolved ids; label similarity otherwise
///  - date: 1 if equal at the coarser granularity of the two, else 0
///    (two values sharing only the year when one is day-granular score 0.5)
///  - quantity: 1 - relative difference, clamped to [0, 1]
///  - nominal integer: exact (1/0)
double ValueSimilarity(const Value& a, const Value& b,
                       const TypeSimilarityOptions& options = {});

/// Applies the type's equivalence threshold: true iff `a` and `b` are
/// considered equal values. This is the predicate used for grouping during
/// fusion, the ATTRIBUTE metrics, duplicate-based schema matching, and the
/// facts-found evaluation.
bool ValuesEqual(const Value& a, const Value& b,
                 const TypeSimilarityOptions& options = {});

}  // namespace ltee::types

#endif  // LTEE_TYPES_TYPE_SIMILARITY_H_
