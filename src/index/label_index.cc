#include "index/label_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/string_util.h"

namespace ltee::index {

LabelIndex::LabelIndex(std::shared_ptr<util::TokenDictionary> dict)
    : dict_(std::move(dict)) {
  if (dict_ == nullptr) dict_ = std::make_shared<util::TokenDictionary>();
}

uint32_t LabelIndex::LocalId(uint32_t global) {
  auto [it, inserted] = local_of_global_.emplace(
      global, static_cast<uint32_t>(local_of_global_.size()));
  if (inserted) postings_.emplace_back();
  return it->second;
}

void LabelIndex::Add(uint32_t doc, std::string_view label) {
  assert(!built_);
  std::string normalized = util::NormalizeLabel(label);
  if (normalized.empty()) return;
  block_by_label_.emplace(normalized,
                          static_cast<int32_t>(block_by_label_.size()));
  Entry entry;
  entry.doc = doc;
  for (const auto& tok : util::Tokenize(normalized)) {
    const uint32_t global = dict_->Intern(tok);
    entry.ordered.push_back(global);
    entry.tokens.push_back(LocalId(global));
  }
  std::sort(entry.tokens.begin(), entry.tokens.end());
  entry.tokens.erase(std::unique(entry.tokens.begin(), entry.tokens.end()),
                     entry.tokens.end());
  entries_.push_back(std::move(entry));
}

void LabelIndex::AddTokens(uint32_t doc, std::string_view normalized,
                           std::span<const uint32_t> tokens) {
  assert(!built_);
  if (normalized.empty()) return;
  block_by_label_.emplace(std::string(normalized),
                          static_cast<int32_t>(block_by_label_.size()));
  Entry entry;
  entry.doc = doc;
  entry.ordered.assign(tokens.begin(), tokens.end());
  for (uint32_t global : tokens) {
    entry.tokens.push_back(LocalId(global));
  }
  std::sort(entry.tokens.begin(), entry.tokens.end());
  entry.tokens.erase(std::unique(entry.tokens.begin(), entry.tokens.end()),
                     entry.tokens.end());
  entries_.push_back(std::move(entry));
}

void LabelIndex::Build() {
  assert(!built_);
  for (size_t e = 0; e < entries_.size(); ++e) {
    for (uint32_t tok : entries_[e].tokens) {
      postings_[tok].push_back(static_cast<uint32_t>(e));
    }
    entries_of_doc_[entries_[e].doc].push_back(static_cast<uint32_t>(e));
  }
  const double n = static_cast<double>(std::max<size_t>(1, entries_.size()));
  idf_.resize(postings_.size());
  for (size_t t = 0; t < postings_.size(); ++t) {
    idf_[t] = std::log(1.0 + n / (1.0 + static_cast<double>(postings_[t].size())));
  }
  for (auto& entry : entries_) {
    double norm = 0.0;
    for (uint32_t tok : entry.tokens) norm += idf_[tok] * idf_[tok];
    entry.norm = std::sqrt(norm);
  }
  built_ = true;
}

std::vector<LabelHit> LabelIndex::Search(std::string_view label,
                                         size_t k) const {
  auto raw = util::Tokenize(label);
  std::vector<QueryToken> tokens;
  tokens.reserve(raw.size());
  for (const auto& tok : raw) {
    const uint32_t global = dict_->Find(tok);
    if (global == util::TokenDictionary::kNoToken) continue;
    tokens.push_back({tok, global});
  }
  // `tokens` views into `raw`, which stays alive for the whole call.
  return SearchResolved(std::move(tokens), k);
}

std::vector<LabelHit> LabelIndex::Search(std::span<const uint32_t> tokens,
                                         size_t k) const {
  std::vector<QueryToken> resolved;
  resolved.reserve(tokens.size());
  for (uint32_t global : tokens) {
    if (global == util::TokenDictionary::kNoToken) continue;
    resolved.push_back({dict_->token(global), global});
  }
  return SearchResolved(std::move(resolved), k);
}

std::vector<LabelHit> LabelIndex::SearchResolved(
    std::vector<QueryToken> tokens, size_t k) const {
  assert(built_);
  std::vector<LabelHit> out;
  if (k == 0) return out;
  // Canonical lexicographic query order: scores must not depend on the
  // dictionary's interning order (ids are sorted by their token string, the
  // order the string overload has always used).
  std::sort(tokens.begin(), tokens.end(),
            [](const QueryToken& a, const QueryToken& b) {
              return a.text < b.text;
            });
  tokens.erase(std::unique(tokens.begin(), tokens.end(),
                           [](const QueryToken& a, const QueryToken& b) {
                             return a.text == b.text;
                           }),
               tokens.end());

  std::unordered_map<uint32_t, double> entry_score;  // entry index -> score
  double query_norm = 0.0;
  for (const auto& tok : tokens) {
    auto it = local_of_global_.find(tok.global);
    if (it == local_of_global_.end()) continue;
    const double w = idf_[it->second];
    query_norm += w * w;
    for (uint32_t e : postings_[it->second]) {
      entry_score[e] += w * w;
    }
  }
  if (entry_score.empty()) return out;
  query_norm = std::sqrt(query_norm);

  // Keep best score per doc (a doc may be indexed under several labels).
  std::unordered_map<uint32_t, double> doc_score;
  for (const auto& [e, s] : entry_score) {
    const Entry& entry = entries_[e];
    double denom = entry.norm * (query_norm == 0.0 ? 1.0 : query_norm);
    double score = denom == 0.0 ? 0.0 : s / denom;
    auto [it, inserted] = doc_score.emplace(entry.doc, score);
    if (!inserted && score > it->second) it->second = score;
  }

  out.reserve(doc_score.size());
  for (const auto& [doc, score] : doc_score) out.push_back({doc, score});
  std::sort(out.begin(), out.end(), [](const LabelHit& a, const LabelHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

int32_t LabelIndex::BlockOf(std::string_view label) const {
  auto it = block_by_label_.find(util::NormalizeLabel(label));
  return it == block_by_label_.end() ? -1 : it->second;
}

std::vector<std::span<const uint32_t>> LabelIndex::LabelTokensOf(
    uint32_t doc) const {
  assert(built_);
  std::vector<std::span<const uint32_t>> out;
  auto it = entries_of_doc_.find(doc);
  if (it == entries_of_doc_.end()) return out;
  out.reserve(it->second.size());
  for (uint32_t e : it->second) {
    out.push_back(entries_[e].ordered);
  }
  return out;
}

int32_t LabelIndex::BlockOfNormalized(std::string_view normalized) const {
  auto it = block_by_label_.find(std::string(normalized));
  return it == block_by_label_.end() ? -1 : it->second;
}

}  // namespace ltee::index
