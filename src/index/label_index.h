#ifndef LTEE_INDEX_LABEL_INDEX_H_
#define LTEE_INDEX_LABEL_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/token_dictionary.h"

namespace ltee::index {

/// A scored retrieval hit: the document id supplied at Add() time and a
/// TF-IDF cosine-ish score in (0, +inf).
struct LabelHit {
  uint32_t doc = 0;
  double score = 0.0;
};

/// Inverted token index over normalized labels — the stand-in for the
/// Lucene index the paper uses for (a) blocking in row clustering and
/// (b) candidate selection in new detection.
///
/// Usage: Add() every (doc, label) pair, call Build() once, then Search().
/// Labels are normalized internally (lower-case, punctuation stripped).
/// A document may be added under several labels (e.g. a KB instance with
/// alias labels); its score is the max over its labels.
///
/// Tokens are interned in a util::TokenDictionary — pass a shared one to
/// let callers feed pre-interned token ids (AddTokens, the span Search
/// overload) straight from a prepared corpus; a private dictionary is
/// created otherwise. Internally every dictionary id is remapped to a dense
/// local id assigned in first-appearance order of the Add stream, so index
/// contents (postings, IDF weights, entry norms) do not depend on the
/// global interning order and Search scores are bit-stable regardless of
/// who else uses the dictionary.
class LabelIndex {
 public:
  LabelIndex() : LabelIndex(nullptr) {}
  explicit LabelIndex(std::shared_ptr<util::TokenDictionary> dict);
  LabelIndex(LabelIndex&&) = default;
  LabelIndex& operator=(LabelIndex&&) = default;
  LabelIndex(const LabelIndex&) = delete;
  LabelIndex& operator=(const LabelIndex&) = delete;

  /// Registers `label` for document `doc`. Must be called before Build().
  void Add(uint32_t doc, std::string_view label);

  /// Pre-tokenized variant of Add: `normalized` is the normalized label and
  /// `tokens` its ordered dictionary token ids (duplicates kept, i.e.
  /// dict().InternTokens(normalized)). Skips re-normalizing, re-tokenizing
  /// and re-hashing the label text.
  void AddTokens(uint32_t doc, std::string_view normalized,
                 std::span<const uint32_t> tokens);

  /// Finalizes the index: computes IDF weights and entry norms.
  void Build();

  /// Returns up to `k` distinct documents whose labels share tokens with
  /// the query, ranked by TF-IDF-weighted overlap normalized by entry
  /// length. Requires Build().
  std::vector<LabelHit> Search(std::string_view label, size_t k) const;

  /// Pre-tokenized query: `tokens` are ordered dictionary ids of the query
  /// label's tokens (duplicates allowed). Returns exactly what the string
  /// overload returns for the corresponding label, without re-tokenizing or
  /// hashing the query text.
  std::vector<LabelHit> Search(std::span<const uint32_t> tokens,
                               size_t k) const;

  /// Block id of an exact normalized label: every distinct normalized label
  /// added to the index forms one block. Returns -1 if the label was never
  /// added. Used by the clustering blocker.
  int32_t BlockOf(std::string_view label) const;

  /// BlockOf for a label that is already normalized.
  int32_t BlockOfNormalized(std::string_view normalized) const;

  /// Ordered dictionary token ids of every label `doc` was added under, in
  /// Add order. Lets callers run token-level string similarity against the
  /// indexed labels without re-tokenizing them. Requires Build().
  std::vector<std::span<const uint32_t>> LabelTokensOf(uint32_t doc) const;

  const util::TokenDictionary& dict() const { return *dict_; }
  const std::shared_ptr<util::TokenDictionary>& dict_ptr() const {
    return dict_;
  }

  size_t num_entries() const { return entries_.size(); }
  size_t num_blocks() const { return block_by_label_.size(); }

 private:
  struct Entry {
    uint32_t doc;
    std::vector<uint32_t> tokens;   // local token ids, deduplicated
    std::vector<uint32_t> ordered;  // dictionary ids, label order, dups kept
    double norm = 0.0;
  };

  /// Local id of a dictionary id, assigned on first appearance.
  uint32_t LocalId(uint32_t global);

  /// Query token resolved to its string (for canonical ordering) and
  /// dictionary id.
  struct QueryToken {
    std::string_view text;
    uint32_t global;
  };

  std::vector<LabelHit> SearchResolved(std::vector<QueryToken> tokens,
                                       size_t k) const;

  std::shared_ptr<util::TokenDictionary> dict_;
  std::vector<Entry> entries_;
  std::unordered_map<uint32_t, uint32_t> local_of_global_;
  std::vector<std::vector<uint32_t>> postings_;  // local id -> entry indices
  std::vector<double> idf_;
  std::unordered_map<uint32_t, std::vector<uint32_t>> entries_of_doc_;
  std::unordered_map<std::string, int32_t> block_by_label_;
  bool built_ = false;
};

}  // namespace ltee::index

#endif  // LTEE_INDEX_LABEL_INDEX_H_
