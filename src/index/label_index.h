#ifndef LTEE_INDEX_LABEL_INDEX_H_
#define LTEE_INDEX_LABEL_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ltee::index {

/// A scored retrieval hit: the document id supplied at Add() time and a
/// TF-IDF cosine-ish score in (0, +inf).
struct LabelHit {
  uint32_t doc = 0;
  double score = 0.0;
};

/// Inverted token index over normalized labels — the stand-in for the
/// Lucene index the paper uses for (a) blocking in row clustering and
/// (b) candidate selection in new detection.
///
/// Usage: Add() every (doc, label) pair, call Build() once, then Search().
/// Labels are normalized internally (lower-case, punctuation stripped).
/// A document may be added under several labels (e.g. a KB instance with
/// alias labels); its score is the max over its labels.
class LabelIndex {
 public:
  LabelIndex() = default;
  LabelIndex(LabelIndex&&) = default;
  LabelIndex& operator=(LabelIndex&&) = default;
  LabelIndex(const LabelIndex&) = delete;
  LabelIndex& operator=(const LabelIndex&) = delete;

  /// Registers `label` for document `doc`. Must be called before Build().
  void Add(uint32_t doc, std::string_view label);

  /// Finalizes the index: computes IDF weights and entry norms.
  void Build();

  /// Returns up to `k` distinct documents whose labels share tokens with
  /// the query, ranked by TF-IDF-weighted overlap normalized by entry
  /// length. Requires Build().
  std::vector<LabelHit> Search(std::string_view label, size_t k) const;

  /// Block id of an exact normalized label: every distinct normalized label
  /// added to the index forms one block. Returns -1 if the label was never
  /// added. Used by the clustering blocker.
  int32_t BlockOf(std::string_view label) const;

  size_t num_entries() const { return entries_.size(); }
  size_t num_blocks() const { return block_by_label_.size(); }

 private:
  struct Entry {
    uint32_t doc;
    std::vector<uint32_t> tokens;  // token ids, deduplicated
    double norm = 0.0;
  };

  uint32_t InternToken(const std::string& token);

  std::vector<Entry> entries_;
  std::unordered_map<std::string, uint32_t> token_ids_;
  std::vector<std::vector<uint32_t>> postings_;  // token id -> entry indices
  std::vector<double> idf_;
  std::unordered_map<std::string, int32_t> block_by_label_;
  bool built_ = false;
};

}  // namespace ltee::index

#endif  // LTEE_INDEX_LABEL_INDEX_H_
