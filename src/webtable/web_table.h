#ifndef LTEE_WEBTABLE_WEB_TABLE_H_
#define LTEE_WEBTABLE_WEB_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.h"

namespace ltee::webtable {

using TableId = int32_t;

/// A relational HTML table extracted from the Web: one header row naming
/// the attributes, then data rows. One attribute (discovered later by label
/// attribute detection) carries the entity labels; the remaining columns
/// carry candidate values.
struct WebTable {
  TableId id = -1;
  /// Attribute header labels (raw, as they appeared on the page).
  std::vector<std::string> headers;
  /// rows[r][c] is the raw cell string of row r, column c.
  std::vector<std::vector<std::string>> rows;
  /// Synthetic provenance: URL of the page the table was extracted from.
  std::string page_url;

  size_t num_columns() const { return headers.size(); }
  size_t num_rows() const { return rows.size(); }
  const std::string& cell(size_t row, size_t col) const {
    return rows[row][col];
  }
};

/// Identifies one row in a corpus. Rows are the unit of clustering.
struct RowRef {
  TableId table = -1;
  int32_t row = -1;

  friend bool operator==(const RowRef&, const RowRef&) = default;
  friend auto operator<=>(const RowRef&, const RowRef&) = default;
};

/// Corpus-level aggregate characteristics (Table 3).
struct CorpusStats {
  size_t num_tables = 0;
  util::Summary rows;
  util::Summary columns;
};

/// A corpus of web tables (the role of the WDC 2012 English relational
/// subset in the paper).
class TableCorpus {
 public:
  TableCorpus() = default;
  TableCorpus(TableCorpus&&) = default;
  TableCorpus& operator=(TableCorpus&&) = default;
  TableCorpus(const TableCorpus&) = delete;
  TableCorpus& operator=(const TableCorpus&) = delete;

  /// Appends `table` and assigns its id. Returns the id.
  TableId Add(WebTable table);

  size_t size() const { return tables_.size(); }
  const WebTable& table(TableId id) const { return tables_[id]; }
  const std::vector<WebTable>& tables() const { return tables_; }

  const std::string& cell(RowRef ref, size_t col) const {
    return tables_[ref.table].rows[ref.row][col];
  }

  /// Total number of data rows across all tables.
  size_t TotalRows() const;

  /// Table 3 style statistics.
  CorpusStats Stats() const;

 private:
  std::vector<WebTable> tables_;
};

}  // namespace ltee::webtable

#endif  // LTEE_WEBTABLE_WEB_TABLE_H_
