#include "webtable/serialization.h"

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "kb/serialization.h"
#include "util/logging.h"

namespace ltee::webtable {

namespace {

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == '\t') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace

void SaveCorpus(const TableCorpus& corpus, std::ostream& out) {
  for (const auto& table : corpus.tables()) {
    out << "T\t" << kb::EscapeField(table.page_url) << '\n';
    out << 'H';
    for (const auto& header : table.headers) {
      out << '\t' << kb::EscapeField(header);
    }
    out << '\n';
    for (const auto& row : table.rows) {
      out << 'R';
      for (const auto& cell : row) out << '\t' << kb::EscapeField(cell);
      out << '\n';
    }
  }
}

std::optional<TableCorpus> LoadCorpus(std::istream& in) {
  TableCorpus corpus;
  std::optional<WebTable> current;
  std::string line;
  int line_number = 0;
  auto flush = [&] {
    if (current) {
      corpus.Add(std::move(*current));
      current.reset();
    }
  };
  auto fail = [&](const char* what) {
    LTEE_LOG(kError) << "LoadCorpus: " << what << " at line " << line_number;
    return std::nullopt;
  };
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    const auto fields = SplitTabs(line);
    if (fields[0] == "T") {
      flush();
      current.emplace();
      if (fields.size() > 1) {
        current->page_url = kb::UnescapeField(fields[1]);
      }
    } else if (fields[0] == "H") {
      if (!current) return fail("header before table");
      for (size_t f = 1; f < fields.size(); ++f) {
        current->headers.push_back(kb::UnescapeField(fields[f]));
      }
    } else if (fields[0] == "R") {
      if (!current) return fail("row before table");
      std::vector<std::string> row;
      for (size_t f = 1; f < fields.size(); ++f) {
        row.push_back(kb::UnescapeField(fields[f]));
      }
      if (row.size() != current->headers.size()) {
        return fail("row width mismatch");
      }
      current->rows.push_back(std::move(row));
    } else {
      return fail("unknown record kind");
    }
  }
  flush();
  return corpus;
}

}  // namespace ltee::webtable
