#ifndef LTEE_WEBTABLE_PREPARED_CORPUS_H_
#define LTEE_WEBTABLE_PREPARED_CORPUS_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "types/data_type.h"
#include "types/value.h"
#include "util/thread_pool.h"
#include "util/token_dictionary.h"
#include "webtable/web_table.h"

namespace ltee::webtable {

/// One cell after the one-time preparation pass: normalized text, interned
/// tokens, and the types::NormalizeCell parse for every candidate DataType.
/// Everything downstream (matching, clustering, fusion, detection) reads
/// these fields instead of re-deriving them from the raw string.
struct PreparedCell {
  /// True when the trimmed raw cell is empty; all other fields are
  /// defaulted in that case.
  bool empty = true;
  /// util::NormalizeLabel of the raw cell (may itself be empty when the
  /// cell holds no alphanumeric characters).
  std::string normalized;
  /// Dictionary ids of the cell's tokens, in order, duplicates kept —
  /// the interned util::Tokenize output.
  std::vector<uint32_t> tokens;
  /// `tokens` sorted and deduplicated, for the set-based kernels.
  std::vector<uint32_t> token_set;
  /// types::NormalizeCell(raw, t) for each DataType t, indexed by the enum
  /// value. nullopt where the cell does not parse as that type.
  std::array<std::optional<types::Value>, types::kNumDataTypes> parsed;

  const std::optional<types::Value>& parsed_as(types::DataType t) const {
    return parsed[static_cast<size_t>(t)];
  }
};

/// Per-table precomputation: prepared header labels, detected column types
/// and the label column (cached here so schema matching stops re-deriving
/// them per matcher), plus all cells in row-major order.
struct PreparedTable {
  TableId id = -1;
  size_t num_columns = 0;
  size_t num_rows = 0;
  std::vector<std::string> normalized_headers;
  /// Ordered dictionary token ids per header.
  std::vector<std::vector<uint32_t>> header_tokens;
  /// types::DetectColumnType over each column's cells.
  std::vector<types::DetectedType> column_types;
  /// Label attribute (Section 3.1.1): text column with the most unique
  /// normalized values; -1 when the table has none.
  int label_column = -1;
  /// Row-major: cells[r * num_columns + c].
  std::vector<PreparedCell> cells;

  const PreparedCell& cell(size_t row, size_t col) const {
    return cells[row * num_columns + col];
  }
};

/// Immutable prepared view over a TableCorpus: one parallel pass computes
/// per cell the normalized label, interned token ids and typed parses, and
/// per table the column types and label column. Built once, read
/// everywhere — no member mutates after construction, so concurrent reads
/// from the parallel per-class pipeline stages are safe.
///
/// The corpus must outlive the PreparedCorpus. The token dictionary is
/// shared: pass the pipeline-wide dictionary so ids line up with the KB
/// label index; a private dictionary is created when none is given.
class PreparedCorpus {
 public:
  /// Prepares every table of `corpus`. When `pool` is non-null the
  /// per-table work runs via pool->ParallelFor (interning is thread-safe);
  /// otherwise it runs serially on the calling thread.
  explicit PreparedCorpus(const TableCorpus& corpus,
                          std::shared_ptr<util::TokenDictionary> dict = nullptr,
                          util::ThreadPool* pool = nullptr);

  PreparedCorpus(PreparedCorpus&&) = default;
  PreparedCorpus& operator=(PreparedCorpus&&) = default;
  PreparedCorpus(const PreparedCorpus&) = delete;
  PreparedCorpus& operator=(const PreparedCorpus&) = delete;

  /// Prepares the tables appended to the corpus since construction (or the
  /// previous Append): ids [size(), corpus().size()). Existing prepared
  /// tables and their token ids are untouched — util::TokenDictionary only
  /// grows, so every id interned before the append stays valid. Returns
  /// the newly prepared table ids: the invalidation set that seeds delta
  /// scoping (each new table invalidates the per-class blocks its schema
  /// mapping assigns it to). Not safe to call concurrently with readers.
  std::vector<TableId> Append(util::ThreadPool* pool = nullptr);

  const TableCorpus& corpus() const { return *corpus_; }
  const util::TokenDictionary& dict() const { return *dict_; }
  const std::shared_ptr<util::TokenDictionary>& dict_ptr() const {
    return dict_;
  }

  size_t size() const { return tables_.size(); }
  const PreparedTable& table(TableId id) const { return tables_[id]; }
  const PreparedCell& cell(RowRef ref, int column) const {
    return tables_[ref.table].cell(static_cast<size_t>(ref.row),
                                   static_cast<size_t>(column));
  }

 private:
  const TableCorpus* corpus_;
  std::shared_ptr<util::TokenDictionary> dict_;
  std::vector<PreparedTable> tables_;
};

}  // namespace ltee::webtable

#endif  // LTEE_WEBTABLE_PREPARED_CORPUS_H_
