#include "webtable/prepared_corpus.h"

#include <algorithm>
#include <unordered_set>

#include "types/value_parser.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace ltee::webtable {

namespace {

void PrepareCell(const std::string& raw, util::TokenDictionary* dict,
                 PreparedCell* out) {
  const std::string_view trimmed = util::Trim(raw);
  if (trimmed.empty()) return;  // keep the defaulted empty state
  out->empty = false;

  auto token_strings = util::Tokenize(raw);
  out->normalized = util::Join(token_strings, " ");
  out->tokens.reserve(token_strings.size());
  for (const auto& tok : token_strings) {
    out->tokens.push_back(dict->Intern(tok));
  }
  out->token_set = util::SortedUnique(out->tokens);

  // The three text-shaped parses share the normalized string; the numeric
  // and date parses go through the same parsers NormalizeCell uses, so
  // every entry equals types::NormalizeCell(raw, t).
  out->parsed[static_cast<size_t>(types::DataType::kText)] =
      types::Value::Text(out->normalized);
  out->parsed[static_cast<size_t>(types::DataType::kNominalString)] =
      types::Value::Nominal(out->normalized);
  out->parsed[static_cast<size_t>(types::DataType::kInstanceReference)] =
      types::Value::InstanceRef(out->normalized);
  out->parsed[static_cast<size_t>(types::DataType::kDate)] =
      types::NormalizeCell(raw, types::DataType::kDate);
  out->parsed[static_cast<size_t>(types::DataType::kQuantity)] =
      types::NormalizeCell(raw, types::DataType::kQuantity);
  out->parsed[static_cast<size_t>(types::DataType::kNominalInteger)] =
      types::NormalizeCell(raw, types::DataType::kNominalInteger);
}

/// Mirrors types::DetectColumnType over one column without materializing
/// the cell vector.
types::DetectedType DetectColumnTypeOf(const WebTable& table, size_t col) {
  int counts[3] = {0, 0, 0};
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const std::string& cell = table.cell(r, col);
    if (util::Trim(cell).empty()) continue;
    counts[static_cast<int>(types::ClassifyCell(cell).type)] += 1;
  }
  int best = 0;
  for (int t = 1; t < 3; ++t) {
    if (counts[t] > counts[best]) best = t;
  }
  return static_cast<types::DetectedType>(best);
}

void PrepareTable(const WebTable& table, util::TokenDictionary* dict,
                  PreparedTable* out) {
  out->id = table.id;
  out->num_columns = table.num_columns();
  out->num_rows = table.num_rows();

  out->normalized_headers.reserve(table.num_columns());
  out->header_tokens.reserve(table.num_columns());
  for (const auto& header : table.headers) {
    auto token_strings = util::Tokenize(header);
    out->normalized_headers.push_back(util::Join(token_strings, " "));
    std::vector<uint32_t> ids;
    ids.reserve(token_strings.size());
    for (const auto& tok : token_strings) ids.push_back(dict->Intern(tok));
    out->header_tokens.push_back(std::move(ids));
  }

  out->cells.resize(table.num_rows() * table.num_columns());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      PrepareCell(table.cell(r, c), dict,
                  &out->cells[r * out->num_columns + c]);
    }
  }

  out->column_types.resize(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    out->column_types[c] = DetectColumnTypeOf(table, c);
  }

  // Label column: text column with the most unique normalized values,
  // leftmost on ties (mirrors matching::DetectLabelColumn).
  int best = -1;
  size_t best_unique = 0;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (out->column_types[c] != types::DetectedType::kText) continue;
    std::unordered_set<std::string_view> unique;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      const PreparedCell& cell = out->cell(r, c);
      if (!cell.normalized.empty()) unique.insert(cell.normalized);
    }
    if (best < 0 || unique.size() > best_unique) {
      best = static_cast<int>(c);
      best_unique = unique.size();
    }
  }
  out->label_column = best;
}

}  // namespace

PreparedCorpus::PreparedCorpus(const TableCorpus& corpus,
                               std::shared_ptr<util::TokenDictionary> dict,
                               util::ThreadPool* pool)
    : corpus_(&corpus), dict_(std::move(dict)) {
  util::trace::ScopedSpan span("webtable.prepare_corpus");
  span.AddArg("tables", corpus.size());
  span.AddArg("parallel", pool != nullptr ? "true" : "false");
  if (dict_ == nullptr) dict_ = std::make_shared<util::TokenDictionary>();
  tables_.resize(corpus.size());
  auto prepare_one = [this, &corpus](size_t t) {
    PrepareTable(corpus.table(static_cast<TableId>(t)), dict_.get(),
                 &tables_[t]);
  };
  if (pool != nullptr) {
    pool->ParallelFor(tables_.size(), prepare_one);
  } else {
    for (size_t t = 0; t < tables_.size(); ++t) prepare_one(t);
  }
  size_t cells = 0;
  for (const PreparedTable& table : tables_) cells += table.cells.size();
  span.AddArg("cells", cells);
  util::Metrics()
      .GetCounter("ltee.prepared.tables")
      .Increment(tables_.size());
  util::Metrics().GetCounter("ltee.prepared.cells").Increment(cells);
  util::Metrics()
      .GetGauge("ltee.prepared.dict_tokens")
      .Set(static_cast<double>(dict_->size()));
}

std::vector<TableId> PreparedCorpus::Append(util::ThreadPool* pool) {
  const size_t old_size = tables_.size();
  if (corpus_->size() <= old_size) return {};
  util::trace::ScopedSpan span("webtable.prepare_append");
  span.AddArg("tables", corpus_->size() - old_size);
  tables_.resize(corpus_->size());
  auto prepare_one = [this, old_size](size_t i) {
    const size_t t = old_size + i;
    PrepareTable(corpus_->table(static_cast<TableId>(t)), dict_.get(),
                 &tables_[t]);
  };
  const size_t appended = tables_.size() - old_size;
  if (pool != nullptr) {
    pool->ParallelFor(appended, prepare_one);
  } else {
    for (size_t i = 0; i < appended; ++i) prepare_one(i);
  }
  std::vector<TableId> new_ids;
  new_ids.reserve(appended);
  size_t cells = 0;
  for (size_t t = old_size; t < tables_.size(); ++t) {
    new_ids.push_back(static_cast<TableId>(t));
    cells += tables_[t].cells.size();
  }
  span.AddArg("cells", cells);
  util::Metrics().GetCounter("ltee.prepared.tables").Increment(appended);
  util::Metrics().GetCounter("ltee.prepared.cells").Increment(cells);
  util::Metrics()
      .GetGauge("ltee.prepared.dict_tokens")
      .Set(static_cast<double>(dict_->size()));
  return new_ids;
}

}  // namespace ltee::webtable
