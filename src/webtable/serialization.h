#ifndef LTEE_WEBTABLE_SERIALIZATION_H_
#define LTEE_WEBTABLE_SERIALIZATION_H_

#include <iosfwd>
#include <optional>

#include "webtable/web_table.h"

namespace ltee::webtable {

/// Serializes a corpus into a line-based format:
///
///   T <url>
///   H <header>*        (tab separated, escaped)
///   R <cell>*          (one line per row)
///
/// Tables appear in id order; ids are reassigned densely on load.
void SaveCorpus(const TableCorpus& corpus, std::ostream& out);

/// Parses the format written by SaveCorpus; nullopt on malformed input.
std::optional<TableCorpus> LoadCorpus(std::istream& in);

}  // namespace ltee::webtable

#endif  // LTEE_WEBTABLE_SERIALIZATION_H_
