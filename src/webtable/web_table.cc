#include "webtable/web_table.h"

namespace ltee::webtable {

TableId TableCorpus::Add(WebTable table) {
  table.id = static_cast<TableId>(tables_.size());
  tables_.push_back(std::move(table));
  return tables_.back().id;
}

size_t TableCorpus::TotalRows() const {
  size_t n = 0;
  for (const auto& t : tables_) n += t.num_rows();
  return n;
}

CorpusStats TableCorpus::Stats() const {
  CorpusStats stats;
  stats.num_tables = tables_.size();
  std::vector<double> rows, cols;
  rows.reserve(tables_.size());
  cols.reserve(tables_.size());
  for (const auto& t : tables_) {
    rows.push_back(static_cast<double>(t.num_rows()));
    cols.push_back(static_cast<double>(t.num_columns()));
  }
  stats.rows = util::Summarize(std::move(rows));
  stats.columns = util::Summarize(std::move(cols));
  return stats;
}

}  // namespace ltee::webtable
