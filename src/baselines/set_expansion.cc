#include "baselines/set_expansion.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/string_util.h"

namespace ltee::baselines {

SetExpander::SetExpander(const webtable::TableCorpus& corpus,
                         std::vector<int> label_column,
                         SetExpansionOptions options)
    : corpus_(&corpus),
      label_column_(std::move(label_column)),
      options_(options) {}

std::vector<ExpansionCandidate> SetExpander::Expand(
    const std::vector<std::string>& seed_labels) const {
  std::unordered_set<std::string> seeds;
  for (const auto& seed : seed_labels) {
    seeds.insert(util::NormalizeLabel(seed));
  }

  // Candidate statistics: in how many tables does a label co-occur with a
  // seed, and in how many does it appear overall.
  std::unordered_map<std::string, int> co_occurrence;
  std::unordered_map<std::string, int> occurrence;

  for (const auto& table : corpus_->tables()) {
    const int label_col =
        table.id < static_cast<int>(label_column_.size())
            ? label_column_[table.id]
            : -1;
    if (label_col < 0) continue;
    bool has_seed = false;
    std::unordered_set<std::string> labels;
    const size_t limit =
        std::min(table.num_rows(), options_.max_rows_per_table);
    for (size_t r = 0; r < limit; ++r) {
      std::string label = util::NormalizeLabel(
          table.cell(r, static_cast<size_t>(label_col)));
      if (label.empty()) continue;
      if (seeds.count(label)) {
        has_seed = true;
      } else {
        labels.insert(std::move(label));
      }
    }
    for (const auto& label : labels) {
      occurrence[label] += 1;
      if (has_seed) co_occurrence[label] += 1;
    }
  }

  std::vector<ExpansionCandidate> candidates;
  candidates.reserve(co_occurrence.size());
  for (const auto& [label, co] : co_occurrence) {
    ExpansionCandidate candidate;
    candidate.label = label;
    // Primary signal: distinct seed tables; small tie-break on overall
    // frequency (popular labels rank higher, mirroring the related work's
    // popularity bias).
    candidate.score =
        static_cast<double>(co) + 0.01 * static_cast<double>(occurrence[label]);
    candidates.push_back(std::move(candidate));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const ExpansionCandidate& a, const ExpansionCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.label < b.label;
            });
  if (candidates.size() > options_.cutoff) {
    candidates.resize(options_.cutoff);
  }
  return candidates;
}

}  // namespace ltee::baselines
