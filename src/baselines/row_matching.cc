#include "baselines/row_matching.h"

#include <algorithm>

#include "types/type_similarity.h"
#include "types/value_parser.h"
#include "util/similarity.h"
#include "util/string_util.h"

namespace ltee::baselines {

RowInstanceMatcher::RowInstanceMatcher(const kb::KnowledgeBase& kb,
                                       const index::LabelIndex& kb_index,
                                       RowMatchingOptions options)
    : kb_(&kb), kb_index_(&kb_index), options_(options) {}

std::vector<RowMatch> RowInstanceMatcher::MatchTable(
    const webtable::WebTable& table,
    const matching::TableMapping& mapping) const {
  std::vector<RowMatch> out;
  out.reserve(table.num_rows());
  const types::TypeSimilarityOptions sim_options;

  for (size_t r = 0; r < table.num_rows(); ++r) {
    RowMatch match;
    match.row = {table.id, static_cast<int32_t>(r)};
    if (mapping.label_column < 0) {
      out.push_back(match);
      continue;
    }
    const std::string& label =
        table.cell(r, static_cast<size_t>(mapping.label_column));
    if (util::Trim(label).empty()) {
      out.push_back(match);
      continue;
    }

    double best_score = 0.0;
    kb::InstanceId best = kb::kInvalidInstance;
    for (const auto& hit :
         kb_index_->Search(label, options_.candidates_per_row)) {
      const kb::Instance& instance = kb_->instance(static_cast<int>(hit.doc));
      double label_sim = 0.0;
      for (const auto& inst_label : instance.labels) {
        label_sim = std::max(label_sim,
                             util::MongeElkanLevenshtein(label, inst_label));
      }
      if (label_sim < options_.label_threshold) continue;

      // Verify against the instance's facts via the matched columns.
      int compared = 0, equal = 0;
      for (size_t c = 0; c < mapping.columns.size(); ++c) {
        const kb::PropertyId property = mapping.columns[c].property;
        if (property == kb::kInvalidProperty) continue;
        const types::Value* fact = kb_->FactOf(instance.id, property);
        if (fact == nullptr) continue;
        auto value = types::NormalizeCell(table.cell(r, c),
                                          kb_->property(property).type);
        if (!value) continue;
        ++compared;
        if (types::ValuesEqual(*value, *fact, sim_options)) ++equal;
      }
      // Combined score: label similarity, adjusted by value verification
      // when comparable values exist.
      double score = label_sim;
      if (compared > 0) {
        const double agreement =
            static_cast<double>(equal) / static_cast<double>(compared);
        score = 0.6 * label_sim + 0.4 * agreement;
      }
      if (score > best_score) {
        best_score = score;
        best = instance.id;
      }
    }
    if (best != kb::kInvalidInstance && best_score >= options_.match_threshold) {
      match.instance = best;
      match.score = best_score;
    }
    out.push_back(match);
  }
  return out;
}

}  // namespace ltee::baselines
