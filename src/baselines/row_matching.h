#ifndef LTEE_BASELINES_ROW_MATCHING_H_
#define LTEE_BASELINES_ROW_MATCHING_H_

#include <vector>

#include "index/label_index.h"
#include "kb/knowledge_base.h"
#include "matching/schema_mapping.h"
#include "webtable/web_table.h"

namespace ltee::baselines {

/// Options of the direct row-to-instance matcher.
struct RowMatchingOptions {
  size_t candidates_per_row = 8;
  /// Minimum label similarity for a candidate.
  double label_threshold = 0.82;
  /// Minimum combined (label + value-overlap) score to emit a match.
  double match_threshold = 0.88;
};

/// One row-level match decision.
struct RowMatch {
  webtable::RowRef row;
  kb::InstanceId instance = kb::kInvalidInstance;  // kInvalid = no match
  double score = 0.0;
};

/// Baseline from the Section 6 comparison and the paper's own earlier work
/// [25-27]: rows are matched *directly* to KB instances — label lookup,
/// label similarity, plus verification against the instance's facts using
/// the matched columns — without clustering rows into entities first. The
/// paper's point is that entity-level matching (cluster first, then match
/// the created entity) exploits strictly more information; this baseline
/// quantifies the difference.
class RowInstanceMatcher {
 public:
  RowInstanceMatcher(const kb::KnowledgeBase& kb,
                     const index::LabelIndex& kb_index,
                     RowMatchingOptions options = {});

  /// Matches every row of `table` under its schema mapping (used for
  /// value verification; unmapped columns contribute nothing).
  std::vector<RowMatch> MatchTable(const webtable::WebTable& table,
                                   const matching::TableMapping& mapping) const;

 private:
  const kb::KnowledgeBase* kb_;
  const index::LabelIndex* kb_index_;
  RowMatchingOptions options_;
};

}  // namespace ltee::baselines

#endif  // LTEE_BASELINES_ROW_MATCHING_H_
