#ifndef LTEE_BASELINES_SET_EXPANSION_H_
#define LTEE_BASELINES_SET_EXPANSION_H_

#include <string>
#include <vector>

#include "webtable/web_table.h"

namespace ltee::baselines {

/// One ranked candidate produced by set expansion.
struct ExpansionCandidate {
  std::string label;
  double score = 0.0;
};

/// Options of the co-occurrence set expander.
struct SetExpansionOptions {
  /// Number of candidates returned (related work uses a fixed cut-off of
  /// 256).
  size_t cutoff = 256;
  /// Maximum rows per table scanned (cost guard).
  size_t max_rows_per_table = 200;
};

/// Baseline from the Section 6 comparison: set expansion in the style of
/// the web-table concept-expansion literature [31-33]. Given a handful of
/// seed entity labels, candidates are other labels from the seed tables'
/// label columns, ranked by how many distinct tables they co-occur in with
/// a seed (and, as a tie-break, in how many tables they appear at all).
///
/// This baseline disambiguates *only on names* — precisely the limitation
/// the paper's entity-level pipeline removes — and always returns a fixed
/// number of candidates.
class SetExpander {
 public:
  /// `label_column[t]` is the label column of table t (-1 skips a table);
  /// typically supplied from the schema mapping or ground truth.
  SetExpander(const webtable::TableCorpus& corpus,
              std::vector<int> label_column,
              SetExpansionOptions options = {});

  /// Expands the seed set; seeds themselves are excluded from the result.
  std::vector<ExpansionCandidate> Expand(
      const std::vector<std::string>& seed_labels) const;

 private:
  const webtable::TableCorpus* corpus_;
  std::vector<int> label_column_;
  SetExpansionOptions options_;
};

}  // namespace ltee::baselines

#endif  // LTEE_BASELINES_SET_EXPANSION_H_
