# Empty dependencies file for ltee_tests.
# This may be replaced when dependencies are built.
