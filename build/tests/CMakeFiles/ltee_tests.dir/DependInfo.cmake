
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/ltee_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/cluster_test.cc" "tests/CMakeFiles/ltee_tests.dir/cluster_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/cluster_test.cc.o.d"
  "/root/repo/tests/coverage_test.cc" "tests/CMakeFiles/ltee_tests.dir/coverage_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/coverage_test.cc.o.d"
  "/root/repo/tests/eval_test.cc" "tests/CMakeFiles/ltee_tests.dir/eval_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/eval_test.cc.o.d"
  "/root/repo/tests/experiment_test.cc" "tests/CMakeFiles/ltee_tests.dir/experiment_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/experiment_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/ltee_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/fusion_test.cc" "tests/CMakeFiles/ltee_tests.dir/fusion_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/fusion_test.cc.o.d"
  "/root/repo/tests/invariants_test.cc" "tests/CMakeFiles/ltee_tests.dir/invariants_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/invariants_test.cc.o.d"
  "/root/repo/tests/kb_webtable_index_test.cc" "tests/CMakeFiles/ltee_tests.dir/kb_webtable_index_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/kb_webtable_index_test.cc.o.d"
  "/root/repo/tests/matching_test.cc" "tests/CMakeFiles/ltee_tests.dir/matching_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/matching_test.cc.o.d"
  "/root/repo/tests/misc_test.cc" "tests/CMakeFiles/ltee_tests.dir/misc_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/misc_test.cc.o.d"
  "/root/repo/tests/ml_test.cc" "tests/CMakeFiles/ltee_tests.dir/ml_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/ml_test.cc.o.d"
  "/root/repo/tests/newdetect_test.cc" "tests/CMakeFiles/ltee_tests.dir/newdetect_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/newdetect_test.cc.o.d"
  "/root/repo/tests/pipeline_test.cc" "tests/CMakeFiles/ltee_tests.dir/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/pipeline_test.cc.o.d"
  "/root/repo/tests/rowcluster_test.cc" "tests/CMakeFiles/ltee_tests.dir/rowcluster_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/rowcluster_test.cc.o.d"
  "/root/repo/tests/serialization_test.cc" "tests/CMakeFiles/ltee_tests.dir/serialization_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/serialization_test.cc.o.d"
  "/root/repo/tests/synth_test.cc" "tests/CMakeFiles/ltee_tests.dir/synth_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/synth_test.cc.o.d"
  "/root/repo/tests/types_test.cc" "tests/CMakeFiles/ltee_tests.dir/types_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/types_test.cc.o.d"
  "/root/repo/tests/util_random_test.cc" "tests/CMakeFiles/ltee_tests.dir/util_random_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/util_random_test.cc.o.d"
  "/root/repo/tests/util_similarity_test.cc" "tests/CMakeFiles/ltee_tests.dir/util_similarity_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/util_similarity_test.cc.o.d"
  "/root/repo/tests/util_stats_test.cc" "tests/CMakeFiles/ltee_tests.dir/util_stats_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/util_stats_test.cc.o.d"
  "/root/repo/tests/util_string_test.cc" "tests/CMakeFiles/ltee_tests.dir/util_string_test.cc.o" "gcc" "tests/CMakeFiles/ltee_tests.dir/util_string_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/ltee_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/ltee_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/ltee_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/newdetect/CMakeFiles/ltee_newdetect.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/ltee_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/rowcluster/CMakeFiles/ltee_rowcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ltee_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ltee_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/ltee_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/webtable/CMakeFiles/ltee_webtable.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/ltee_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/ltee_types.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/ltee_index.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ltee_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ltee_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
