file(REMOVE_RECURSE
  "CMakeFiles/ltee_cli.dir/ltee_cli.cpp.o"
  "CMakeFiles/ltee_cli.dir/ltee_cli.cpp.o.d"
  "ltee_cli"
  "ltee_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltee_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
