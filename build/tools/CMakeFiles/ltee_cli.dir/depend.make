# Empty dependencies file for ltee_cli.
# This may be replaced when dependencies are built.
