file(REMOVE_RECURSE
  "CMakeFiles/ltee_fusion.dir/entity_creator.cc.o"
  "CMakeFiles/ltee_fusion.dir/entity_creator.cc.o.d"
  "libltee_fusion.a"
  "libltee_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltee_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
