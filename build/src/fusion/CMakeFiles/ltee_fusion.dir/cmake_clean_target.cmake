file(REMOVE_RECURSE
  "libltee_fusion.a"
)
