# Empty dependencies file for ltee_fusion.
# This may be replaced when dependencies are built.
