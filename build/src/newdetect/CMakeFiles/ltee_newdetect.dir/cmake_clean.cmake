file(REMOVE_RECURSE
  "CMakeFiles/ltee_newdetect.dir/new_detector.cc.o"
  "CMakeFiles/ltee_newdetect.dir/new_detector.cc.o.d"
  "libltee_newdetect.a"
  "libltee_newdetect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltee_newdetect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
