file(REMOVE_RECURSE
  "libltee_newdetect.a"
)
