# Empty dependencies file for ltee_newdetect.
# This may be replaced when dependencies are built.
