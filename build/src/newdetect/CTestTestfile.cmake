# CMake generated Testfile for 
# Source directory: /root/repo/src/newdetect
# Build directory: /root/repo/build/src/newdetect
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
