
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/attribute_matchers.cc" "src/matching/CMakeFiles/ltee_matching.dir/attribute_matchers.cc.o" "gcc" "src/matching/CMakeFiles/ltee_matching.dir/attribute_matchers.cc.o.d"
  "/root/repo/src/matching/label_attribute.cc" "src/matching/CMakeFiles/ltee_matching.dir/label_attribute.cc.o" "gcc" "src/matching/CMakeFiles/ltee_matching.dir/label_attribute.cc.o.d"
  "/root/repo/src/matching/property_value_profile.cc" "src/matching/CMakeFiles/ltee_matching.dir/property_value_profile.cc.o" "gcc" "src/matching/CMakeFiles/ltee_matching.dir/property_value_profile.cc.o.d"
  "/root/repo/src/matching/schema_matcher.cc" "src/matching/CMakeFiles/ltee_matching.dir/schema_matcher.cc.o" "gcc" "src/matching/CMakeFiles/ltee_matching.dir/schema_matcher.cc.o.d"
  "/root/repo/src/matching/table_to_class.cc" "src/matching/CMakeFiles/ltee_matching.dir/table_to_class.cc.o" "gcc" "src/matching/CMakeFiles/ltee_matching.dir/table_to_class.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/ltee_index.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/ltee_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/webtable/CMakeFiles/ltee_webtable.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/ltee_types.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ltee_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ltee_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
