# Empty dependencies file for ltee_matching.
# This may be replaced when dependencies are built.
