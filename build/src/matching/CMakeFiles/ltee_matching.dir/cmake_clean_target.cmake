file(REMOVE_RECURSE
  "libltee_matching.a"
)
