file(REMOVE_RECURSE
  "CMakeFiles/ltee_matching.dir/attribute_matchers.cc.o"
  "CMakeFiles/ltee_matching.dir/attribute_matchers.cc.o.d"
  "CMakeFiles/ltee_matching.dir/label_attribute.cc.o"
  "CMakeFiles/ltee_matching.dir/label_attribute.cc.o.d"
  "CMakeFiles/ltee_matching.dir/property_value_profile.cc.o"
  "CMakeFiles/ltee_matching.dir/property_value_profile.cc.o.d"
  "CMakeFiles/ltee_matching.dir/schema_matcher.cc.o"
  "CMakeFiles/ltee_matching.dir/schema_matcher.cc.o.d"
  "CMakeFiles/ltee_matching.dir/table_to_class.cc.o"
  "CMakeFiles/ltee_matching.dir/table_to_class.cc.o.d"
  "libltee_matching.a"
  "libltee_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltee_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
