# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("types")
subdirs("kb")
subdirs("webtable")
subdirs("index")
subdirs("ml")
subdirs("cluster")
subdirs("synth")
subdirs("baselines")
subdirs("matching")
subdirs("rowcluster")
subdirs("fusion")
subdirs("newdetect")
subdirs("eval")
subdirs("pipeline")
