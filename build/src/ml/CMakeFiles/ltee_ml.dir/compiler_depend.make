# Empty compiler generated dependencies file for ltee_ml.
# This may be replaced when dependencies are built.
