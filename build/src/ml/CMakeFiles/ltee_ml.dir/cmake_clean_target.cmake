file(REMOVE_RECURSE
  "libltee_ml.a"
)
