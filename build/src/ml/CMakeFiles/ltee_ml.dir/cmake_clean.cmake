file(REMOVE_RECURSE
  "CMakeFiles/ltee_ml.dir/aggregator.cc.o"
  "CMakeFiles/ltee_ml.dir/aggregator.cc.o.d"
  "CMakeFiles/ltee_ml.dir/cross_validation.cc.o"
  "CMakeFiles/ltee_ml.dir/cross_validation.cc.o.d"
  "CMakeFiles/ltee_ml.dir/dataset.cc.o"
  "CMakeFiles/ltee_ml.dir/dataset.cc.o.d"
  "CMakeFiles/ltee_ml.dir/genetic.cc.o"
  "CMakeFiles/ltee_ml.dir/genetic.cc.o.d"
  "CMakeFiles/ltee_ml.dir/random_forest.cc.o"
  "CMakeFiles/ltee_ml.dir/random_forest.cc.o.d"
  "CMakeFiles/ltee_ml.dir/weighted_average.cc.o"
  "CMakeFiles/ltee_ml.dir/weighted_average.cc.o.d"
  "libltee_ml.a"
  "libltee_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltee_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
