
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/aggregator.cc" "src/ml/CMakeFiles/ltee_ml.dir/aggregator.cc.o" "gcc" "src/ml/CMakeFiles/ltee_ml.dir/aggregator.cc.o.d"
  "/root/repo/src/ml/cross_validation.cc" "src/ml/CMakeFiles/ltee_ml.dir/cross_validation.cc.o" "gcc" "src/ml/CMakeFiles/ltee_ml.dir/cross_validation.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/ltee_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/ltee_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/genetic.cc" "src/ml/CMakeFiles/ltee_ml.dir/genetic.cc.o" "gcc" "src/ml/CMakeFiles/ltee_ml.dir/genetic.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/ml/CMakeFiles/ltee_ml.dir/random_forest.cc.o" "gcc" "src/ml/CMakeFiles/ltee_ml.dir/random_forest.cc.o.d"
  "/root/repo/src/ml/weighted_average.cc" "src/ml/CMakeFiles/ltee_ml.dir/weighted_average.cc.o" "gcc" "src/ml/CMakeFiles/ltee_ml.dir/weighted_average.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ltee_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
