# Empty compiler generated dependencies file for ltee_index.
# This may be replaced when dependencies are built.
