file(REMOVE_RECURSE
  "CMakeFiles/ltee_index.dir/label_index.cc.o"
  "CMakeFiles/ltee_index.dir/label_index.cc.o.d"
  "libltee_index.a"
  "libltee_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltee_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
