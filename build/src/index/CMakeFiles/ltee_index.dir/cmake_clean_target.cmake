file(REMOVE_RECURSE
  "libltee_index.a"
)
