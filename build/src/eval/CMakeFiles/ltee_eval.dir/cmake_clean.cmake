file(REMOVE_RECURSE
  "CMakeFiles/ltee_eval.dir/clustering_eval.cc.o"
  "CMakeFiles/ltee_eval.dir/clustering_eval.cc.o.d"
  "CMakeFiles/ltee_eval.dir/gold_serialization.cc.o"
  "CMakeFiles/ltee_eval.dir/gold_serialization.cc.o.d"
  "CMakeFiles/ltee_eval.dir/gold_standard.cc.o"
  "CMakeFiles/ltee_eval.dir/gold_standard.cc.o.d"
  "CMakeFiles/ltee_eval.dir/pipeline_eval.cc.o"
  "CMakeFiles/ltee_eval.dir/pipeline_eval.cc.o.d"
  "libltee_eval.a"
  "libltee_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltee_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
