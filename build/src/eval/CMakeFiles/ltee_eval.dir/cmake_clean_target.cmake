file(REMOVE_RECURSE
  "libltee_eval.a"
)
