# Empty dependencies file for ltee_eval.
# This may be replaced when dependencies are built.
