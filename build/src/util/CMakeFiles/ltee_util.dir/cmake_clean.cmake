file(REMOVE_RECURSE
  "CMakeFiles/ltee_util.dir/logging.cc.o"
  "CMakeFiles/ltee_util.dir/logging.cc.o.d"
  "CMakeFiles/ltee_util.dir/random.cc.o"
  "CMakeFiles/ltee_util.dir/random.cc.o.d"
  "CMakeFiles/ltee_util.dir/similarity.cc.o"
  "CMakeFiles/ltee_util.dir/similarity.cc.o.d"
  "CMakeFiles/ltee_util.dir/stats.cc.o"
  "CMakeFiles/ltee_util.dir/stats.cc.o.d"
  "CMakeFiles/ltee_util.dir/string_util.cc.o"
  "CMakeFiles/ltee_util.dir/string_util.cc.o.d"
  "CMakeFiles/ltee_util.dir/thread_pool.cc.o"
  "CMakeFiles/ltee_util.dir/thread_pool.cc.o.d"
  "libltee_util.a"
  "libltee_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltee_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
