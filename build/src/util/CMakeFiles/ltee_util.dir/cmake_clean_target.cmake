file(REMOVE_RECURSE
  "libltee_util.a"
)
