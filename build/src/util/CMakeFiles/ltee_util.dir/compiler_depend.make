# Empty compiler generated dependencies file for ltee_util.
# This may be replaced when dependencies are built.
