file(REMOVE_RECURSE
  "libltee_cluster.a"
)
