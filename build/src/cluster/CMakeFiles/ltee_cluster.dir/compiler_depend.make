# Empty compiler generated dependencies file for ltee_cluster.
# This may be replaced when dependencies are built.
