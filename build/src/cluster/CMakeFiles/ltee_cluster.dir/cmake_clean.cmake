file(REMOVE_RECURSE
  "CMakeFiles/ltee_cluster.dir/correlation_clusterer.cc.o"
  "CMakeFiles/ltee_cluster.dir/correlation_clusterer.cc.o.d"
  "libltee_cluster.a"
  "libltee_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltee_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
