file(REMOVE_RECURSE
  "CMakeFiles/ltee_webtable.dir/serialization.cc.o"
  "CMakeFiles/ltee_webtable.dir/serialization.cc.o.d"
  "CMakeFiles/ltee_webtable.dir/web_table.cc.o"
  "CMakeFiles/ltee_webtable.dir/web_table.cc.o.d"
  "libltee_webtable.a"
  "libltee_webtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltee_webtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
