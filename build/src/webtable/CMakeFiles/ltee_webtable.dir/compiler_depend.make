# Empty compiler generated dependencies file for ltee_webtable.
# This may be replaced when dependencies are built.
