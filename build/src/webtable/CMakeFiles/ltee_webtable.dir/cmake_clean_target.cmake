file(REMOVE_RECURSE
  "libltee_webtable.a"
)
