
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/webtable/serialization.cc" "src/webtable/CMakeFiles/ltee_webtable.dir/serialization.cc.o" "gcc" "src/webtable/CMakeFiles/ltee_webtable.dir/serialization.cc.o.d"
  "/root/repo/src/webtable/web_table.cc" "src/webtable/CMakeFiles/ltee_webtable.dir/web_table.cc.o" "gcc" "src/webtable/CMakeFiles/ltee_webtable.dir/web_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kb/CMakeFiles/ltee_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ltee_util.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/ltee_types.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
