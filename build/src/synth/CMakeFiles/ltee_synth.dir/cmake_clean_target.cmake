file(REMOVE_RECURSE
  "libltee_synth.a"
)
