file(REMOVE_RECURSE
  "CMakeFiles/ltee_synth.dir/class_profile.cc.o"
  "CMakeFiles/ltee_synth.dir/class_profile.cc.o.d"
  "CMakeFiles/ltee_synth.dir/corpus_builder.cc.o"
  "CMakeFiles/ltee_synth.dir/corpus_builder.cc.o.d"
  "CMakeFiles/ltee_synth.dir/dataset.cc.o"
  "CMakeFiles/ltee_synth.dir/dataset.cc.o.d"
  "CMakeFiles/ltee_synth.dir/gold_standard_builder.cc.o"
  "CMakeFiles/ltee_synth.dir/gold_standard_builder.cc.o.d"
  "CMakeFiles/ltee_synth.dir/kb_builder.cc.o"
  "CMakeFiles/ltee_synth.dir/kb_builder.cc.o.d"
  "CMakeFiles/ltee_synth.dir/name_pools.cc.o"
  "CMakeFiles/ltee_synth.dir/name_pools.cc.o.d"
  "CMakeFiles/ltee_synth.dir/world.cc.o"
  "CMakeFiles/ltee_synth.dir/world.cc.o.d"
  "libltee_synth.a"
  "libltee_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltee_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
