# Empty dependencies file for ltee_synth.
# This may be replaced when dependencies are built.
