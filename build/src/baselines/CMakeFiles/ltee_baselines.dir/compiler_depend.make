# Empty compiler generated dependencies file for ltee_baselines.
# This may be replaced when dependencies are built.
