file(REMOVE_RECURSE
  "libltee_baselines.a"
)
