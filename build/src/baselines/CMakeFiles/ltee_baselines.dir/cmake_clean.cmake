file(REMOVE_RECURSE
  "CMakeFiles/ltee_baselines.dir/row_matching.cc.o"
  "CMakeFiles/ltee_baselines.dir/row_matching.cc.o.d"
  "CMakeFiles/ltee_baselines.dir/set_expansion.cc.o"
  "CMakeFiles/ltee_baselines.dir/set_expansion.cc.o.d"
  "libltee_baselines.a"
  "libltee_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltee_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
