# Empty compiler generated dependencies file for ltee_pipeline.
# This may be replaced when dependencies are built.
