file(REMOVE_RECURSE
  "CMakeFiles/ltee_pipeline.dir/dedup.cc.o"
  "CMakeFiles/ltee_pipeline.dir/dedup.cc.o.d"
  "CMakeFiles/ltee_pipeline.dir/experiment.cc.o"
  "CMakeFiles/ltee_pipeline.dir/experiment.cc.o.d"
  "CMakeFiles/ltee_pipeline.dir/gold_artifacts.cc.o"
  "CMakeFiles/ltee_pipeline.dir/gold_artifacts.cc.o.d"
  "CMakeFiles/ltee_pipeline.dir/kb_update.cc.o"
  "CMakeFiles/ltee_pipeline.dir/kb_update.cc.o.d"
  "CMakeFiles/ltee_pipeline.dir/pipeline.cc.o"
  "CMakeFiles/ltee_pipeline.dir/pipeline.cc.o.d"
  "CMakeFiles/ltee_pipeline.dir/profiling.cc.o"
  "CMakeFiles/ltee_pipeline.dir/profiling.cc.o.d"
  "CMakeFiles/ltee_pipeline.dir/slot_filling.cc.o"
  "CMakeFiles/ltee_pipeline.dir/slot_filling.cc.o.d"
  "CMakeFiles/ltee_pipeline.dir/training.cc.o"
  "CMakeFiles/ltee_pipeline.dir/training.cc.o.d"
  "libltee_pipeline.a"
  "libltee_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltee_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
