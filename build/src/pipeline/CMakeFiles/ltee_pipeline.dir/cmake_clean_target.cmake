file(REMOVE_RECURSE
  "libltee_pipeline.a"
)
