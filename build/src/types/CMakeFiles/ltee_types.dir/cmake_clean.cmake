file(REMOVE_RECURSE
  "CMakeFiles/ltee_types.dir/type_similarity.cc.o"
  "CMakeFiles/ltee_types.dir/type_similarity.cc.o.d"
  "CMakeFiles/ltee_types.dir/value.cc.o"
  "CMakeFiles/ltee_types.dir/value.cc.o.d"
  "CMakeFiles/ltee_types.dir/value_parser.cc.o"
  "CMakeFiles/ltee_types.dir/value_parser.cc.o.d"
  "libltee_types.a"
  "libltee_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltee_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
