file(REMOVE_RECURSE
  "libltee_types.a"
)
