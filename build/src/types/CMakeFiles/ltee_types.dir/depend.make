# Empty dependencies file for ltee_types.
# This may be replaced when dependencies are built.
