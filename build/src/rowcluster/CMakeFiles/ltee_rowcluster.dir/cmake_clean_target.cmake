file(REMOVE_RECURSE
  "libltee_rowcluster.a"
)
