file(REMOVE_RECURSE
  "CMakeFiles/ltee_rowcluster.dir/row_clusterer.cc.o"
  "CMakeFiles/ltee_rowcluster.dir/row_clusterer.cc.o.d"
  "CMakeFiles/ltee_rowcluster.dir/row_features.cc.o"
  "CMakeFiles/ltee_rowcluster.dir/row_features.cc.o.d"
  "CMakeFiles/ltee_rowcluster.dir/row_metrics.cc.o"
  "CMakeFiles/ltee_rowcluster.dir/row_metrics.cc.o.d"
  "libltee_rowcluster.a"
  "libltee_rowcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltee_rowcluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
