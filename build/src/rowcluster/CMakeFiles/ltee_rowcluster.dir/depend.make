# Empty dependencies file for ltee_rowcluster.
# This may be replaced when dependencies are built.
