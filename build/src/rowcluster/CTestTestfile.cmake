# CMake generated Testfile for 
# Source directory: /root/repo/src/rowcluster
# Build directory: /root/repo/build/src/rowcluster
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
