file(REMOVE_RECURSE
  "CMakeFiles/ltee_kb.dir/knowledge_base.cc.o"
  "CMakeFiles/ltee_kb.dir/knowledge_base.cc.o.d"
  "CMakeFiles/ltee_kb.dir/serialization.cc.o"
  "CMakeFiles/ltee_kb.dir/serialization.cc.o.d"
  "libltee_kb.a"
  "libltee_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltee_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
