file(REMOVE_RECURSE
  "libltee_kb.a"
)
