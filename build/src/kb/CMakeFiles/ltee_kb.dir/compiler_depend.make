# Empty compiler generated dependencies file for ltee_kb.
# This may be replaced when dependencies are built.
