
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kb/knowledge_base.cc" "src/kb/CMakeFiles/ltee_kb.dir/knowledge_base.cc.o" "gcc" "src/kb/CMakeFiles/ltee_kb.dir/knowledge_base.cc.o.d"
  "/root/repo/src/kb/serialization.cc" "src/kb/CMakeFiles/ltee_kb.dir/serialization.cc.o" "gcc" "src/kb/CMakeFiles/ltee_kb.dir/serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/types/CMakeFiles/ltee_types.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ltee_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
