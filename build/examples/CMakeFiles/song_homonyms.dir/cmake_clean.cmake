file(REMOVE_RECURSE
  "CMakeFiles/song_homonyms.dir/song_homonyms.cpp.o"
  "CMakeFiles/song_homonyms.dir/song_homonyms.cpp.o.d"
  "song_homonyms"
  "song_homonyms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/song_homonyms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
