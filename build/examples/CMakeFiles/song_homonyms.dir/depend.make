# Empty dependencies file for song_homonyms.
# This may be replaced when dependencies are built.
