file(REMOVE_RECURSE
  "CMakeFiles/settlement_audit.dir/settlement_audit.cpp.o"
  "CMakeFiles/settlement_audit.dir/settlement_audit.cpp.o.d"
  "settlement_audit"
  "settlement_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/settlement_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
