# Empty compiler generated dependencies file for settlement_audit.
# This may be replaced when dependencies are built.
