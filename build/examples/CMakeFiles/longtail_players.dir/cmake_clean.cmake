file(REMOVE_RECURSE
  "CMakeFiles/longtail_players.dir/longtail_players.cpp.o"
  "CMakeFiles/longtail_players.dir/longtail_players.cpp.o.d"
  "longtail_players"
  "longtail_players.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longtail_players.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
