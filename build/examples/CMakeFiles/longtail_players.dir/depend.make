# Empty dependencies file for longtail_players.
# This may be replaced when dependencies are built.
