file(REMOVE_RECURSE
  "CMakeFiles/bench_table09_new_instances_found.dir/bench_table09_new_instances_found.cpp.o"
  "CMakeFiles/bench_table09_new_instances_found.dir/bench_table09_new_instances_found.cpp.o.d"
  "bench_table09_new_instances_found"
  "bench_table09_new_instances_found.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table09_new_instances_found.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
