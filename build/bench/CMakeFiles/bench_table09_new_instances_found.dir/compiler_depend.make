# Empty compiler generated dependencies file for bench_table09_new_instances_found.
# This may be replaced when dependencies are built.
