# Empty dependencies file for bench_table10_facts_found.
# This may be replaced when dependencies are built.
