file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_facts_found.dir/bench_table10_facts_found.cpp.o"
  "CMakeFiles/bench_table10_facts_found.dir/bench_table10_facts_found.cpp.o.d"
  "bench_table10_facts_found"
  "bench_table10_facts_found.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_facts_found.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
