# Empty compiler generated dependencies file for bench_sec6_ranked_eval.
# This may be replaced when dependencies are built.
