# Empty dependencies file for bench_table01_kb_profile.
# This may be replaced when dependencies are built.
