file(REMOVE_RECURSE
  "CMakeFiles/bench_table07_row_clustering_ablation.dir/bench_table07_row_clustering_ablation.cpp.o"
  "CMakeFiles/bench_table07_row_clustering_ablation.dir/bench_table07_row_clustering_ablation.cpp.o.d"
  "bench_table07_row_clustering_ablation"
  "bench_table07_row_clustering_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table07_row_clustering_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
