# Empty dependencies file for bench_table07_row_clustering_ablation.
# This may be replaced when dependencies are built.
