# Empty compiler generated dependencies file for bench_ext_slot_filling.
# This may be replaced when dependencies are built.
