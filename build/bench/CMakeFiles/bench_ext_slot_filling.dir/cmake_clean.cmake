file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_slot_filling.dir/bench_ext_slot_filling.cpp.o"
  "CMakeFiles/bench_ext_slot_filling.dir/bench_ext_slot_filling.cpp.o.d"
  "bench_ext_slot_filling"
  "bench_ext_slot_filling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_slot_filling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
