# Empty dependencies file for bench_sec6_baselines.
# This may be replaced when dependencies are built.
