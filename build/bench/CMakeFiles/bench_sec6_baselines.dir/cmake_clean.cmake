file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_baselines.dir/bench_sec6_baselines.cpp.o"
  "CMakeFiles/bench_sec6_baselines.dir/bench_sec6_baselines.cpp.o.d"
  "bench_sec6_baselines"
  "bench_sec6_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
