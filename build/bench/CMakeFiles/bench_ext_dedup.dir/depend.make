# Empty dependencies file for bench_ext_dedup.
# This may be replaced when dependencies are built.
