file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_dedup.dir/bench_ext_dedup.cpp.o"
  "CMakeFiles/bench_ext_dedup.dir/bench_ext_dedup.cpp.o.d"
  "bench_ext_dedup"
  "bench_ext_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
