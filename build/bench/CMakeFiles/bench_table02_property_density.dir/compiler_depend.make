# Empty compiler generated dependencies file for bench_table02_property_density.
# This may be replaced when dependencies are built.
