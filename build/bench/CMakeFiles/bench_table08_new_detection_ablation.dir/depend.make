# Empty dependencies file for bench_table08_new_detection_ablation.
# This may be replaced when dependencies are built.
