file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_new_entity_density.dir/bench_table12_new_entity_density.cpp.o"
  "CMakeFiles/bench_table12_new_entity_density.dir/bench_table12_new_entity_density.cpp.o.d"
  "bench_table12_new_entity_density"
  "bench_table12_new_entity_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_new_entity_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
