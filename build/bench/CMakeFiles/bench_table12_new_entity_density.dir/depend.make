# Empty dependencies file for bench_table12_new_entity_density.
# This may be replaced when dependencies are built.
