file(REMOVE_RECURSE
  "CMakeFiles/bench_table06_schema_matching_iterations.dir/bench_table06_schema_matching_iterations.cpp.o"
  "CMakeFiles/bench_table06_schema_matching_iterations.dir/bench_table06_schema_matching_iterations.cpp.o.d"
  "bench_table06_schema_matching_iterations"
  "bench_table06_schema_matching_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table06_schema_matching_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
