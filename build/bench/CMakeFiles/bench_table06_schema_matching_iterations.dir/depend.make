# Empty dependencies file for bench_table06_schema_matching_iterations.
# This may be replaced when dependencies are built.
