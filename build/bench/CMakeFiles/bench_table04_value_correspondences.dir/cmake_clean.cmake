file(REMOVE_RECURSE
  "CMakeFiles/bench_table04_value_correspondences.dir/bench_table04_value_correspondences.cpp.o"
  "CMakeFiles/bench_table04_value_correspondences.dir/bench_table04_value_correspondences.cpp.o.d"
  "bench_table04_value_correspondences"
  "bench_table04_value_correspondences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table04_value_correspondences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
