# Empty compiler generated dependencies file for bench_table04_value_correspondences.
# This may be replaced when dependencies are built.
