# Empty dependencies file for bench_table11_large_scale_profiling.
# This may be replaced when dependencies are built.
