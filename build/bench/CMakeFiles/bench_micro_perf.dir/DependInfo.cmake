
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_perf.cpp" "bench/CMakeFiles/bench_micro_perf.dir/bench_micro_perf.cpp.o" "gcc" "bench/CMakeFiles/bench_micro_perf.dir/bench_micro_perf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/ltee_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/ltee_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/ltee_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/newdetect/CMakeFiles/ltee_newdetect.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/ltee_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/rowcluster/CMakeFiles/ltee_rowcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ltee_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ltee_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/ltee_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/webtable/CMakeFiles/ltee_webtable.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/ltee_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/ltee_types.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/ltee_index.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ltee_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ltee_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
