# Empty dependencies file for bench_table05_gold_standard.
# This may be replaced when dependencies are built.
