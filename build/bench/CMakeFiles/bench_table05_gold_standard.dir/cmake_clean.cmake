file(REMOVE_RECURSE
  "CMakeFiles/bench_table05_gold_standard.dir/bench_table05_gold_standard.cpp.o"
  "CMakeFiles/bench_table05_gold_standard.dir/bench_table05_gold_standard.cpp.o.d"
  "bench_table05_gold_standard"
  "bench_table05_gold_standard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table05_gold_standard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
